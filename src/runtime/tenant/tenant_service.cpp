#include "runtime/tenant/tenant_service.hpp"

#include <algorithm>
#include <array>

#include "chaos/chaos.hpp"
#include "obs/export.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"

namespace abp::runtime::tenant {

namespace {

constexpr std::uint8_t raw(SlotState s) noexcept {
  return static_cast<std::uint8_t>(s);
}

// The monotone per-tenant counters whose joint stability defines a
// consistent shutdown snapshot (build_report's retry loop).
struct CounterSample {
  std::uint64_t submitted, admitted, completed, shed;
  std::uint64_t rej_quota, rej_global, rej_stopped, timed_out;

  static CounterSample read(const TenantCounters& c) noexcept {
    CounterSample s;
    s.submitted = c.submitted.load(std::memory_order_seq_cst);
    s.admitted = c.admitted.load(std::memory_order_seq_cst);
    s.completed = c.completed.load(std::memory_order_seq_cst);
    s.shed = c.shed.load(std::memory_order_seq_cst);
    s.rej_quota = c.rejected_tenant_quota.load(std::memory_order_seq_cst);
    s.rej_global = c.rejected_global.load(std::memory_order_seq_cst);
    s.rej_stopped = c.rejected_stopped.load(std::memory_order_seq_cst);
    s.timed_out = c.timed_out.load(std::memory_order_seq_cst);
    return s;
  }
  bool operator==(const CounterSample& o) const noexcept {
    return submitted == o.submitted && admitted == o.admitted &&
           completed == o.completed && shed == o.shed &&
           rej_quota == o.rej_quota && rej_global == o.rej_global &&
           rej_stopped == o.rej_stopped && timed_out == o.timed_out;
  }
};

}  // namespace

TenantService::TenantService(ServiceOptions opts) : opts_(std::move(opts)) {
  if (opts_.max_tenants == 0) opts_.max_tenants = 1;
  slot_count_ =
      opts_.max_outstanding_total == 0 ? 1 : opts_.max_outstanding_total;
  // Resolve the watermarks: high defaults to 3/4 of the table, low to 1/4;
  // high is clamped below the table size so a full table always triggers,
  // and low is forced strictly below high so a shed pass makes progress.
  queue_high_ = opts_.overload.queue_high != 0 ? opts_.overload.queue_high
                                               : (slot_count_ * 3) / 4;
  if (queue_high_ >= slot_count_) queue_high_ = slot_count_ - 1;
  queue_low_ = opts_.overload.queue_low != 0 ? opts_.overload.queue_low
                                             : slot_count_ / 4;
  if (queue_low_ > queue_high_) queue_low_ = queue_high_ / 2;
  slots_ = std::make_unique<RequestSlot[]>(slot_count_);
  // Chain the freelist in reverse index order so admissions pop slots in
  // ascending order (pure cosmetics; any order is correct).
  for (std::size_t i = slot_count_; i-- > 0;) {
    slots_[i].next = free_head_.load(std::memory_order_relaxed);
    free_head_.store(&slots_[i], std::memory_order_relaxed);
  }
  tenants_ = std::make_unique<TenantState[]>(opts_.max_tenants);
  sched_ = std::make_unique<Scheduler>(opts_.scheduler);
}

TenantService::~TenantService() {
  if (!shutdown_called_) shutdown(std::chrono::milliseconds(2000));
  if (started_ && !server_joined_) {
    // Timed-out shutdown deferred this join: the dispatcher may have been
    // wedged inside a job. By destruction time the caller must have
    // released whatever gated it; force_stop_ makes the dispatcher exit at
    // its next loop iteration.
    force_stop_.store(true, std::memory_order_seq_cst);
    server_thread_.join();
    server_joined_ = true;
  }
  // Join the pool BEFORE any member dies. After a timed-out shutdown the
  // pool workers may still be draining their deques, and detached tenant
  // jobs dereference slots_/tenants_/park_lot_ right up to finalize();
  // ~Scheduler joins every worker, so running it here (not in member
  // destruction order, where sched_ outlives the tables) makes the
  // teardown safe.
  sched_.reset();
}

TenantId TenantService::register_tenant(std::string name, Quota quota) {
  ABP_ASSERT(!started_ && "register_tenant() must precede start()");
  const std::uint32_t id = tenant_count_.load(std::memory_order_acquire);
  ABP_ASSERT(id < opts_.max_tenants && "max_tenants exceeded");
  TenantState& ts = tenants_[id];
  ts.name = std::move(name);
  if (quota.max_outstanding == 0) quota.max_outstanding = 1;
  if (quota.weight == 0) quota.weight = 1;
  ts.quota = quota;
  tenant_count_.store(id + 1, std::memory_order_release);
  return id;
}

void TenantService::start() {
  if (started_) return;
  started_ = true;
  server_thread_ = std::thread([this] {
    try {
      sched_->run([this](Worker& w) { dispatcher_loop(w); });
    } catch (...) {
      // AllWorkersLostError under adversarial chaos: the pool died under
      // the dispatcher. shutdown() classifies whatever never finalized as
      // abandoned; nothing to do here.
    }
  });
  if (opts_.overload.enabled)
    shed_thread_ = std::thread([this] { shedder_main(); });
}

// ---------------------------------------------------------------------------
// Admission (control plane)

SubmitResult TenantService::submit(TenantId t, const RequestShape& shape) {
  return submit_impl(t, shape, /*block=*/false, {});
}

SubmitResult TenantService::submit_blocking(TenantId t,
                                            const RequestShape& shape,
                                            std::chrono::milliseconds timeout) {
  return submit_impl(t, shape, /*block=*/true,
                     std::chrono::steady_clock::now() + timeout);
}

RequestSlot* TenantService::pop_free_slot() {
  // The caller reserved budget before popping, and every finalize pushes
  // the slot back *before* releasing budget (seq_cst both sides), so a
  // reservation always finds a slot; the spin only covers the instant
  // between a concurrent push's CAS and our (re)read.
  for (;;) {
    RequestSlot* head = free_head_.load(std::memory_order_seq_cst);
    if (head == nullptr) {
      cpu_relax();
      continue;
    }
    // In-list nodes' next links are stable: pops are serialized under
    // admit_mu_ and pushes only prepend, so head->next cannot change
    // between the load and a successful CAS.
    if (free_head_.compare_exchange_weak(head, head->next,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst))
      return head;
  }
}

SubmitResult TenantService::submit_impl(
    TenantId t, const RequestShape& shape, bool block,
    std::chrono::steady_clock::time_point deadline) {
  ABP_ASSERT(t < tenant_count_.load(std::memory_order_acquire));
  TenantState& ts = tenants_[t];
  ts.counters.submitted.fetch_add(1, std::memory_order_seq_cst);
  for (;;) {
    CHAOS_POINT("tenant.admit.check");
    AdmitStatus verdict = AdmitStatus::kAdmitted;
    RequestSlot* slot = nullptr;
    {
      sync::MutexLock lk(admit_mu_);
      if (stopping_.load(std::memory_order_seq_cst)) {
        verdict = AdmitStatus::kRejectedStopped;
      } else if (ts.outstanding.load(std::memory_order_seq_cst) >=
                 ts.quota.max_outstanding) {
        verdict = AdmitStatus::kRejectedTenantQuota;
      } else if (global_outstanding_.load(std::memory_order_seq_cst) >=
                 slot_count_) {
        verdict = AdmitStatus::kRejectedGlobalLimit;
      } else {
        ts.outstanding.fetch_add(1, std::memory_order_seq_cst);
        global_outstanding_.fetch_add(1, std::memory_order_seq_cst);
        slot = pop_free_slot();
      }
    }
    if (verdict == AdmitStatus::kAdmitted) {
      const std::uint64_t seq =
          admit_seq_.fetch_add(1, std::memory_order_acq_rel);
      slot->tenant_id.store(t, std::memory_order_relaxed);
      slot->kind = shape.kind;
      slot->width = shape.width == 0 ? 1 : shape.width;
      slot->spin_ns = shape.spin_ns_per_node;
      slot->admit_seq.store(seq, std::memory_order_relaxed);
      slot->submit_ns.store(now_ns(), std::memory_order_relaxed);
      slot->cancel.reset();
      slot->remaining.store(0, std::memory_order_relaxed);
      ts.counters.admitted.fetch_add(1, std::memory_order_seq_cst);
      // Publish: the release store makes every field above visible to the
      // shedder's acquire scan and (via the intake CAS chain) to the
      // dispatcher.
      slot->state.store(raw(SlotState::kQueued), std::memory_order_release);
      RequestSlot* head = intake_.load(std::memory_order_acquire);
      do {
        slot->next = head;
      } while (!intake_.compare_exchange_weak(head, slot,
                                              std::memory_order_release,
                                              std::memory_order_acquire));
      return {AdmitStatus::kAdmitted, seq};
    }
    if (verdict == AdmitStatus::kRejectedStopped) {
      ts.counters.rejected_stopped.fetch_add(1, std::memory_order_seq_cst);
      return {verdict, 0};
    }
    if (!block) {
      if (verdict == AdmitStatus::kRejectedTenantQuota)
        ts.counters.rejected_tenant_quota.fetch_add(1,
                                                    std::memory_order_seq_cst);
      else
        ts.counters.rejected_global.fetch_add(1, std::memory_order_seq_cst);
      return {verdict, 0};
    }
    // Blocking path: park futex-style until capacity looks available (or
    // the service stops), then loop back and retry admission — the retry
    // can lose the race to another submitter, exactly like a futex wake.
    CHAOS_POINT("tenant.submit.requeue");
    ts.counters.parked.fetch_add(1, std::memory_order_seq_cst);
    const bool ready = park_lot_.park_until(t, deadline, [&]() {
      if (stopping_.load(std::memory_order_seq_cst)) return true;
      return ts.outstanding.load(std::memory_order_seq_cst) <
                 ts.quota.max_outstanding &&
             global_outstanding_.load(std::memory_order_seq_cst) <
                 slot_count_;
    });
    if (!ready) {
      ts.counters.timed_out.fetch_add(1, std::memory_order_seq_cst);
      return {AdmitStatus::kTimedOut, 0};
    }
  }
}

// ---------------------------------------------------------------------------
// Worker context: the dispatcher root and the request dags

void TenantService::dispatcher_loop(Worker& w) {
  for (;;) {
    // Drain the intake: grab the whole Treiber stack, reverse to FIFO.
    if (RequestSlot* head = intake_.exchange(nullptr,
                                             std::memory_order_acq_rel)) {
      RequestSlot* fifo = nullptr;
      while (head != nullptr) {
        RequestSlot* nx = head->next;
        head->next = fifo;
        fifo = head;
        head = nx;
      }
      while (fifo != nullptr) {
        // Read the link BEFORE spawning: the job can be stolen, run, and
        // the slot recycled (next overwritten) before spawn returns.
        RequestSlot* nx = fifo->next;
        spawn_request(w, fifo);
        fifo = nx;
      }
      continue;
    }
    if (Job* j = w.pop_bottom()) {
      w.execute(j);
      continue;
    }
    if (stop_dispatcher_.load(std::memory_order_acquire)) {
      if (force_stop_.load(std::memory_order_acquire)) return;
      // outstanding == 0 implies an empty intake too: the admitter's
      // outstanding increment precedes its intake push, and stopping_
      // (set before stop_dispatcher_) blocks new admissions.
      if (global_outstanding_.load(std::memory_order_seq_cst) == 0) return;
    }
    w.yield_between_steals();
    if (Job* j = w.try_steal()) w.execute(j);
  }
}

void TenantService::spawn_request(Worker& w, RequestSlot* s) {
  w.spawn_detached([this, s](Worker& w2) { run_first(w2, s); });
}

void TenantService::run_first(Worker& w, RequestSlot* s) {
  ++w.stats().tenant_jobs;
  // The exactly-once arbiter: exactly one of {this job, the shedder} wins
  // the CAS out of kQueued. The loser performs no accounting.
  std::uint8_t expected = raw(SlotState::kQueued);
  if (!s->state.compare_exchange_strong(expected, raw(SlotState::kRunning),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    ABP_ASSERT(expected == raw(SlotState::kShed));
    // Stamp the overload cancellation here, in the loser: from this failed
    // CAS until push_free() this job is the slot's sole owner, so the
    // request cannot race a re-admission's cancel.reset() the way a
    // shedder-side request could.
    s->cancel.request(CancelReason::kOverload);
    finalize(w, s, /*completed=*/false);
    return;
  }
  if (s->kind == RequestKind::kPipeline) {
    run_stage(w, s, 0);
    return;
  }
  // Fan-out/fan-in: `width` leaves; the one that decrements remaining to
  // zero finalizes. The count is published before any leaf can run (the
  // spawns below happen after the store, and we run the first leaf
  // inline).
  const std::uint32_t width = s->width;
  s->remaining.store(width, std::memory_order_release);
  for (std::uint32_t i = 1; i < width; ++i) {
    w.spawn_detached([this, s](Worker& w2) {
      ++w2.stats().tenant_jobs;
      spin_for_ns(s->spin_ns);
      leaf_done(w2, s);
    });
  }
  spin_for_ns(s->spin_ns);
  leaf_done(w, s);
}

void TenantService::leaf_done(Worker& w, RequestSlot* s) {
  if (s->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1)
    finalize(w, s, /*completed=*/true);
}

void TenantService::run_stage(Worker& w, RequestSlot* s, std::uint32_t stage) {
  spin_for_ns(s->spin_ns);
  const std::uint32_t next = stage + 1;
  if (next >= s->width) {
    finalize(w, s, /*completed=*/true);
    return;
  }
  w.spawn_detached([this, s, next](Worker& w2) {
    ++w2.stats().tenant_jobs;
    run_stage(w2, s, next);
  });
}

void TenantService::finalize(Worker& w, RequestSlot* s, bool completed) {
  // Copy everything we need first: after push_free() the slot can be
  // re-admitted instantly, so no access past that point.
  const TenantId tid = s->tenant_id.load(std::memory_order_relaxed);
  const std::uint64_t seq = s->admit_seq.load(std::memory_order_relaxed);
  const std::uint64_t lat_ns =
      now_ns() - s->submit_ns.load(std::memory_order_relaxed);
  TenantState& ts = tenants_[tid];
  if (completed) {
    ts.counters.completed.fetch_add(1, std::memory_order_seq_cst);
    {
      // SpinLock: worker context forbids blocking mutexes. Completed
      // requests only — shed latencies would poison the SLO histogram.
      sync::SpinLockHolder hold(ts.lat_mu);
      ts.latency.record(lat_ns);
    }
    ++w.stats().tenant_requests_completed;
  } else {
    ts.counters.shed.fetch_add(1, std::memory_order_seq_cst);
    ++w.stats().tenant_requests_shed;
  }
  if (opts_.on_finalize) opts_.on_finalize(tid, seq, completed);
  s->state.store(raw(SlotState::kFree), std::memory_order_release);
  push_free(s);
  // Budget release AFTER the push (pop_free_slot's invariant), then wake
  // parked submitters of this tenant — both quota and global capacity may
  // have freed, and a colliding bucket wake is just a spurious wakeup.
  ts.outstanding.fetch_sub(1, std::memory_order_seq_cst);
  global_outstanding_.fetch_sub(1, std::memory_order_seq_cst);
  park_lot_.wake(tid);
}

void TenantService::push_free(RequestSlot* s) noexcept {
  RequestSlot* head = free_head_.load(std::memory_order_seq_cst);
  do {
    s->next = head;
  } while (!free_head_.compare_exchange_weak(head, s,
                                             std::memory_order_seq_cst,
                                             std::memory_order_seq_cst));
}

// ---------------------------------------------------------------------------
// Shedder (control-plane watchdog)

void TenantService::shedder_main() {
  const auto poll = std::chrono::milliseconds(
      opts_.overload.poll_ms == 0 ? 1 : opts_.overload.poll_ms);
  std::vector<std::pair<std::uint64_t, RequestSlot*>> scratch;
  scratch.reserve(slot_count_);
  sync::MutexLock lock(shed_mu_);
  for (;;) {
    if (shed_cv_.wait_for(shed_mu_, poll,
                          [this]() ABP_REQUIRES(shed_mu_) { return shed_stop_; }))
      return;
    shedder_poll(scratch);
  }
}

std::size_t TenantService::shedder_poll(
    std::vector<std::pair<std::uint64_t, RequestSlot*>>& scratch) {
  scratch.clear();
  const std::uint64_t now = now_ns();
  for (std::size_t i = 0; i < slot_count_; ++i) {
    RequestSlot* s = &slots_[i];
    if (s->state.load(std::memory_order_acquire) == raw(SlotState::kQueued))
      scratch.emplace_back(s->admit_seq.load(std::memory_order_relaxed), s);
  }
  const std::size_t depth = scratch.size();
  bool overloaded = depth > queue_high_;
  if (overloaded && opts_.overload.stale_p99_ms > 0.0) {
    // p99 age of the queued requests: sort ascending, index at the 99th
    // percentile rank. Small n degrades to the max, which is what we want.
    std::vector<std::uint64_t> ages;
    ages.reserve(depth);
    for (const auto& [seq, s] : scratch) {
      const std::uint64_t sub = s->submit_ns.load(std::memory_order_relaxed);
      ages.push_back(now > sub ? now - sub : 0);
    }
    std::sort(ages.begin(), ages.end());
    const std::size_t rank =
        std::min(depth - 1, static_cast<std::size_t>(0.99 * depth));
    const double p99_ms = static_cast<double>(ages[rank]) / 1e6;
    overloaded = p99_ms > opts_.overload.stale_p99_ms;
  }
  if (!overloaded) {
    shed_sustain_ = 0;
    return depth;
  }
  if (++shed_sustain_ < opts_.overload.sustain_polls) return depth;
  shed_sustain_ = 0;  // re-arm the hysteresis after this pass
  // Shed newest-first (largest admit_seq) down to the low watermark.
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t live = depth;
  bool shed_any = false;
  for (const auto& [seq, s] : scratch) {
    if (live <= queue_low_) break;
    CHAOS_POINT("tenant.shed.select");
    // Best-effort newest-first: skip slots recycled since the scan. A
    // recycle racing *after* this check can still redirect the shed onto
    // the slot's new occupant — still exactly-once and typed, just not
    // strictly ordered (header comment).
    if (s->admit_seq.load(std::memory_order_relaxed) != seq) continue;
    std::uint8_t expected = raw(SlotState::kQueued);
    if (s->state.compare_exchange_strong(expected, raw(SlotState::kShed),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      // The CAS, not the cancel flag, is the arbiter — and the CancelSource
      // is stamped by the shed *observer* (run_first's losing branch), not
      // here. Requesting from this thread could land on a recycled slot's
      // new occupant: the loser can finalize and the slot be re-admitted
      // between our CAS and a request issued here.
      shed_marked_.fetch_add(1, std::memory_order_seq_cst);
      shed_any = true;
      --live;
    }
  }
  if (shed_any) overload_rounds_.fetch_add(1, std::memory_order_seq_cst);
  return depth;
}

// ---------------------------------------------------------------------------
// Drain / shutdown

bool TenantService::drain(std::chrono::milliseconds timeout) {
  const auto end = std::chrono::steady_clock::now() + timeout;
  while (global_outstanding_.load(std::memory_order_seq_cst) != 0) {
    if (std::chrono::steady_clock::now() >= end) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

ShutdownReport TenantService::shutdown(std::chrono::milliseconds deadline) {
  if (shutdown_called_) return first_report_;
  shutdown_called_ = true;
  const auto end = std::chrono::steady_clock::now() + deadline;
  // 1. Stop admissions; release every parked submitter (their predicates
  // see stopping_ and they return kRejectedStopped). The store happens
  // under admit_mu_ so it serializes with the admission critical section:
  // any submitter that read stopping_==false has already incremented
  // global_outstanding_ inside that same section, so once we release the
  // lock the drain loop below cannot observe 0 while an admission is still
  // in flight.
  {
    sync::MutexLock lk(admit_mu_);
    stopping_.store(true, std::memory_order_seq_cst);
  }
  park_lot_.wake_all();
  // 2. Drain admitted requests up to the deadline.
  bool drained = true;
  if (started_) {
    while (global_outstanding_.load(std::memory_order_seq_cst) != 0) {
      if (std::chrono::steady_clock::now() >= end) {
        drained = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // 3. Stop the dispatcher. On the drained path it exits promptly and we
    // join the server thread here; on the timed-out path it may be wedged
    // inside a gated job — joining would deadlock the shutdown, so the
    // destructor joins instead (after the caller unwedges whatever gated
    // it).
    stop_dispatcher_.store(true, std::memory_order_seq_cst);
    if (!drained) force_stop_.store(true, std::memory_order_seq_cst);
    if (drained) {
      server_thread_.join();
      server_joined_ = true;
      // Belt-and-braces for the never-silent-drop contract: the admit_mu_
      // handshake above should make a post-drain admission impossible, but
      // if one ever slipped through, the dispatcher has now exited and the
      // request is stranded in kQueued — report it as abandoned rather
      // than claim a clean drain.
      if (global_outstanding_.load(std::memory_order_seq_cst) != 0)
        drained = false;
    }
  } else {
    drained = global_outstanding_.load(std::memory_order_seq_cst) == 0;
  }
  // 4. Stop the shedder BEFORE snapshotting: with it gone, the control
  // plane no longer mutates slot states (workers may still finalize
  // running dags on the timed-out path; the snapshot retry loop handles
  // that).
  if (shed_thread_.joinable()) {
    {
      sync::MutexLock lk(shed_mu_);
      shed_stop_ = true;
    }
    shed_cv_.notify_all();
    shed_thread_.join();
  }
  // 5. Shut the pool down with whatever budget remains. The 50 ms floor
  // applies only to the drained path (the pool is idle, so the join is
  // quick and the caller's deadline was met); on the timed-out path the
  // deadline has already expired, so hand the scheduler a zero budget —
  // its wait_for returns immediately, it reports abandonment, and the
  // destructor completes the join.
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      end - std::chrono::steady_clock::now());
  if (drained) {
    if (remaining < std::chrono::milliseconds(50))
      remaining = std::chrono::milliseconds(50);
  } else if (remaining < std::chrono::milliseconds(0)) {
    remaining = std::chrono::milliseconds(0);
  }
  runtime::ShutdownReport sched_rep = sched_->shutdown(remaining);
  first_report_ = build_report(drained, !drained, std::move(sched_rep));
  return first_report_;
}

ShutdownReport TenantService::build_report(bool drained, bool timed_out,
                                           runtime::ShutdownReport sched_rep) {
  ShutdownReport rep;
  rep.drained = drained;
  rep.timed_out = timed_out;
  rep.scheduler = sched_rep;
  const std::size_t n = tenant_count_.load(std::memory_order_acquire);
  // Retry-consistent snapshot: counters, slot scan, counters again — keep
  // at it until the counters did not move across the scan. On a drained
  // shutdown the first attempt is already stable.
  std::vector<CounterSample> before(n), after(n);
  struct Scan {
    std::uint64_t queued = 0, running = 0, shed = 0;
  };
  std::vector<Scan> scans(n);
  for (int attempt = 0; attempt < 16 && !rep.consistent; ++attempt) {
    for (std::size_t t = 0; t < n; ++t)
      before[t] = CounterSample::read(tenants_[t].counters);
    for (auto& sc : scans) sc = Scan{};
    for (std::size_t i = 0; i < slot_count_; ++i) {
      const RequestSlot& s = slots_[i];
      const std::uint8_t st = s.state.load(std::memory_order_acquire);
      if (st == raw(SlotState::kFree)) continue;
      const TenantId tid = s.tenant_id.load(std::memory_order_relaxed);
      if (tid >= n) continue;  // torn with a concurrent admit; retry below
      if (st == raw(SlotState::kQueued))
        ++scans[tid].queued;
      else if (st == raw(SlotState::kRunning))
        ++scans[tid].running;
      else
        ++scans[tid].shed;
    }
    bool stable = true;
    for (std::size_t t = 0; t < n; ++t) {
      after[t] = CounterSample::read(tenants_[t].counters);
      if (!(before[t] == after[t])) stable = false;
    }
    if (stable) rep.consistent = true;
  }
  rep.tenants.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    const CounterSample& c = before[t];
    TenantRow row;
    row.id = static_cast<TenantId>(t);
    row.name = tenants_[t].name;
    row.submitted = c.submitted;
    row.admitted = c.admitted;
    row.completed = c.completed;
    row.shed = c.shed;
    row.rejected_tenant_quota = c.rej_quota;
    row.rejected_global = c.rej_global;
    row.rejected_stopped = c.rej_stopped;
    row.timed_out = c.timed_out;
    row.abandoned_queued = scans[t].queued;
    row.abandoned_running = scans[t].running;
    row.abandoned_shed = scans[t].shed;
    rep.tenants.push_back(std::move(row));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Introspection + exporters

std::size_t TenantService::queued_depth() const noexcept {
  std::size_t depth = 0;
  for (std::size_t i = 0; i < slot_count_; ++i)
    if (slots_[i].state.load(std::memory_order_acquire) ==
        raw(SlotState::kQueued))
      ++depth;
  return depth;
}

TenantSnapshot TenantService::snapshot(TenantId t) const {
  ABP_ASSERT(t < tenant_count_.load(std::memory_order_acquire));
  const TenantState& ts = tenants_[t];
  const CounterSample c = CounterSample::read(ts.counters);
  TenantSnapshot snap;
  snap.id = t;
  snap.name = ts.name;
  snap.weight = ts.quota.weight;
  snap.max_outstanding = ts.quota.max_outstanding;
  snap.outstanding = ts.outstanding.load(std::memory_order_seq_cst);
  snap.submitted = c.submitted;
  snap.admitted = c.admitted;
  snap.completed = c.completed;
  snap.shed = c.shed;
  snap.rejected_tenant_quota = c.rej_quota;
  snap.rejected_global = c.rej_global;
  snap.rejected_stopped = c.rej_stopped;
  snap.timed_out = c.timed_out;
  snap.parked = ts.counters.parked.load(std::memory_order_seq_cst);
  {
    sync::SpinLockHolder hold(ts.lat_mu);
    snap.latency = ts.latency;
  }
  return snap;
}

std::vector<TenantSnapshot> TenantService::snapshot_all() const {
  const std::size_t n = tenant_count_.load(std::memory_order_acquire);
  std::vector<TenantSnapshot> out;
  out.reserve(n);
  for (std::size_t t = 0; t < n; ++t)
    out.push_back(snapshot(static_cast<TenantId>(t)));
  return out;
}

std::vector<obs::MetricPoint> TenantService::live_sample() const {
  // Monotone counters ONLY: the METRICS_JSON schema checker enforces
  // monotonicity over every totals key, so gauges (outstanding, queued
  // depth, parked) are exported through prometheus_text() instead.
  std::uint64_t submitted = 0, admitted = 0, completed = 0, shed = 0;
  std::uint64_t rejected = 0, timed_out = 0;
  const std::size_t n = tenant_count_.load(std::memory_order_acquire);
  for (std::size_t t = 0; t < n; ++t) {
    const CounterSample c = CounterSample::read(tenants_[t].counters);
    submitted += c.submitted;
    admitted += c.admitted;
    completed += c.completed;
    shed += c.shed;
    rejected += c.rej_quota + c.rej_global + c.rej_stopped;
    timed_out += c.timed_out;
  }
  std::vector<obs::MetricPoint> out;
  out.reserve(8);
  auto add = [&out](const char* name, std::uint64_t v) {
    out.push_back({name, static_cast<double>(v)});
  };
  add("abp_tenant_submitted", submitted);
  add("abp_tenant_admitted", admitted);
  add("abp_tenant_completed", completed);
  add("abp_tenant_shed", shed);
  add("abp_tenant_rejected", rejected);
  add("abp_tenant_timed_out", timed_out);
  add("abp_tenant_shed_marked", shed_marked_.load(std::memory_order_seq_cst));
  add("abp_tenant_overload_rounds",
      overload_rounds_.load(std::memory_order_seq_cst));
  return out;
}

std::string TenantService::prometheus_text() const {
  obs::PrometheusWriter w;
  w.gauge("abp_tenant_service_outstanding",
          static_cast<double>(outstanding()));
  w.gauge("abp_tenant_service_queued_depth",
          static_cast<double>(queued_depth()));
  w.gauge("abp_tenant_service_parked_submitters",
          static_cast<double>(parked_submitters()));
  w.counter("abp_tenant_service_shed_marked_total",
            static_cast<double>(shed_marked()));
  w.counter("abp_tenant_service_overload_rounds_total",
            static_cast<double>(overload_rounds()));
  for (const TenantSnapshot& s : snapshot_all()) {
    const std::string labels =
        "tenant=\"" + obs::prometheus_sanitize(s.name) + "\"";
    w.gauge("abp_tenant_outstanding", static_cast<double>(s.outstanding),
            labels);
    w.counter("abp_tenant_submitted_total", static_cast<double>(s.submitted),
              labels);
    w.counter("abp_tenant_admitted_total", static_cast<double>(s.admitted),
              labels);
    w.counter("abp_tenant_completed_total", static_cast<double>(s.completed),
              labels);
    w.counter("abp_tenant_shed_total", static_cast<double>(s.shed), labels);
    w.counter("abp_tenant_rejected_total",
              static_cast<double>(s.rejected_tenant_quota + s.rejected_global +
                                  s.rejected_stopped),
              labels);
    w.counter("abp_tenant_timed_out_total", static_cast<double>(s.timed_out),
              labels);
    w.histogram("abp_tenant_request_latency_ns", s.latency, 1.0, labels);
  }
  return w.str();
}

std::string TenantService::stats_json() const {
  obs::JsonObjectWriter w;
  w.add("tenants", static_cast<std::uint64_t>(tenant_count()));
  w.add("slots", static_cast<std::uint64_t>(slot_count_));
  w.add("queue_high", static_cast<std::uint64_t>(queue_high_));
  w.add("queue_low", static_cast<std::uint64_t>(queue_low_));
  w.add("outstanding", static_cast<std::uint64_t>(outstanding()));
  w.add("queued_depth", static_cast<std::uint64_t>(queued_depth()));
  w.add("parked_submitters", parked_submitters());
  w.add("shed_marked", shed_marked());
  w.add("overload_rounds", overload_rounds());
  std::string rows;
  for (const TenantSnapshot& s : snapshot_all()) {
    obs::JsonObjectWriter r;
    r.add("id", static_cast<std::uint64_t>(s.id));
    r.add("name", s.name);
    r.add("weight", static_cast<std::uint64_t>(s.weight));
    r.add("max_outstanding", static_cast<std::uint64_t>(s.max_outstanding));
    r.add("outstanding", static_cast<std::uint64_t>(s.outstanding));
    r.add("submitted", s.submitted);
    r.add("admitted", s.admitted);
    r.add("completed", s.completed);
    r.add("shed", s.shed);
    r.add("rejected_tenant_quota", s.rejected_tenant_quota);
    r.add("rejected_global", s.rejected_global);
    r.add("rejected_stopped", s.rejected_stopped);
    r.add("timed_out", s.timed_out);
    r.add("parked", s.parked);
    r.add_raw("latency_ns", obs::histogram_summary_json(s.latency, 1.0));
    if (!rows.empty()) rows += ",";
    rows += r.str();
  }
  w.add_raw("per_tenant", "[" + rows + "]");
  return w.str();
}

}  // namespace abp::runtime::tenant
