#pragma once
// atomics-lint: allow(futex-style waiter counts layered above the annotated sync wrappers)

// Futex-discipline parking for blocked submitter threads (DESIGN.md §16).
//
// A burst of submitters hitting an exhausted quota must block cheaply and
// wake without a thundering herd. The shape is the kernel futex's hashed
// wait queues: waiters hash their tenant id into one of kBuckets bucket
// queues, so a capacity release wakes only the (hash bucket of the) tenant
// it freed capacity for, not every blocked submitter in the process.
//
// The three futex disciplines, mapped onto the repo's annotated wrappers:
//
//   * No-waiter fast path: wake() first reads the bucket's waiter count
//     (seq_cst) and returns without touching the mutex when it is zero —
//     the common case for every finalize while nobody is blocked, exactly
//     futex_wake on an uncontended word.
//   * Registration before sleep: park_until() bumps the waiter count
//     (seq_cst), then re-checks its wake predicate *under the bucket
//     mutex* before sleeping. Paired with the waker's state-update
//     (seq_cst) happening before its waiter-count read, this is the
//     store-buffering pattern: either the waker sees the registration and
//     notifies, or the parker's re-check sees the new state and never
//     sleeps. No lost wakeups.
//   * Hash collisions are benign: a colliding wake is a spurious wakeup;
//     the parker re-evaluates its predicate and parks again. Bounded
//     wait_for chunks backstop liveness besides.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "runtime/tenant/tenant.hpp"
#include "support/align.hpp"
#include "support/sync.hpp"

namespace abp::runtime::tenant {

class SubmitterParkingLot {
 public:
  static constexpr std::size_t kBuckets = 16;

  // Blocks the calling control-plane thread until pred() holds or
  // `deadline` passes; returns the final pred() value. pred is evaluated
  // under the bucket mutex (it should read only atomics). Tolerates
  // spurious and collision wakeups by looping.
  template <typename Pred>
  bool park_until(TenantId key,
                  std::chrono::steady_clock::time_point deadline,
                  Pred&& pred) {
    Bucket& b = bucket(key);
    b.waiters.fetch_add(1, std::memory_order_seq_cst);
    bool satisfied = false;
    {
      sync::MutexLock lk(b.mu);
      for (;;) {
        if (pred()) {
          satisfied = true;
          break;
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        // Chunked waits: bounded sleeps keep an overflowing duration (a
        // "wait forever" deadline) and a missed collision wake both
        // harmless.
        auto chunk = deadline - now;
        if (chunk > kMaxWaitChunk) chunk = kMaxWaitChunk;
        b.cv.wait_for(b.mu, chunk);
      }
    }
    b.waiters.fetch_sub(1, std::memory_order_seq_cst);
    return satisfied;
  }

  // Worker-context wake, called after capacity is released (finalize) or
  // state changed (shutdown). Futex no-waiter fast path; otherwise the
  // empty critical section orders this wake against an in-flight park
  // decision (same protocol as Scheduler::notify_parked).
  void wake(TenantId key) noexcept {
    Bucket& b = bucket(key);
    if (b.waiters.load(std::memory_order_seq_cst) == 0) return;
    { sync::MutexLock lk(b.mu); }
    b.cv.notify_all();
  }

  // Control-plane broadcast (shutdown): every bucket, no fast path.
  void wake_all() noexcept {
    for (Bucket& b : buckets_) {
      { sync::MutexLock lk(b.mu); }
      b.cv.notify_all();
    }
  }

  // Currently parked submitters (approximate while racing registrations).
  std::uint64_t parked() const noexcept {
    std::uint64_t n = 0;
    for (const Bucket& b : buckets_)
      n += b.waiters.load(std::memory_order_seq_cst);
    return n;
  }

 private:
  static constexpr std::chrono::milliseconds kMaxWaitChunk{2};

  struct alignas(kCacheLineSize) Bucket {
    sync::Mutex mu;
    sync::CondVar cv;
    std::atomic<std::uint32_t> waiters{0};
  };

  // Fibonacci-hash the tenant id across the buckets so adjacent ids do
  // not share a bucket (the futex_hash idea, scaled down).
  Bucket& bucket(TenantId key) noexcept {
    return buckets_[(key * 2654435761u) % kBuckets];
  }
  const Bucket& bucket(TenantId key) const noexcept {
    return buckets_[(key * 2654435761u) % kBuckets];
  }

  Bucket buckets_[kBuckets];
};

}  // namespace abp::runtime::tenant
