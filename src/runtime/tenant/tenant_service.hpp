#pragma once
// atomics-lint: allow(request-slot lifecycle CAS and quota counters layered above the modeled deques)

// Multi-tenant overload-protection plane (DESIGN.md §16).
//
// N tenants share one ABP work-stealing pool. Scheduler::run is single-root
// and non-reentrant, so the service owns a *dispatcher root*: a server
// thread runs scheduler().run(dispatcher_loop), and the dispatcher drains a
// lock-free MPSC intake stack of admitted requests, spawning each as a
// detached (group-less) job dag and otherwise participating in the Figure 3
// loop (pop own deque, yield, steal) like any worker.
//
// Exactly-once request outcome. Requests live in a preallocated slot table;
// each slot's atomic state is the arbiter:
//
//   kFree --admit--> kQueued --first-job CAS--> kRunning --done--> kFree
//                       \---shedder CAS-------> kShed --first-job--> kFree
//
// Exactly one CAS out of kQueued succeeds, so a request is *either*
// completed *or* shed, never both and never neither; the loser of the race
// observes the winner's transition and performs no accounting. All
// accounting (tenant counters, latency histogram, WorkerStats
// tenant_requests_*) happens in finalize(), always in worker context.
//
// Admission is serialized under admit_mu_ (control plane); slot release is
// a lock-free Treiber push from worker context. Serialized pops + lock-free
// prepends cannot ABA. Quota/global budgets are reserved *before* the slot
// pop and released *after* the freelist push, so a reservation always finds
// a free slot.
//
// The shedder is a control-plane watchdog thread (same discipline as
// Scheduler's stall watchdog): it polls queued depth and the p99 age of
// queued requests, requires the overload to sustain for a configured number
// of polls, then cancels the NEWEST admitted-but-unstarted requests
// (CancelReason::kOverload) until depth returns to the low watermark.
// Victim ordering is best-effort newest-first: a slot can be finalized and
// reused between the scan and the CAS, which the admit_seq re-check
// mitigates but cannot fully close — the outcome is still exactly-once and
// typed, merely not strictly ordered under that race.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/pump.hpp"
#include "runtime/options.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/tenant/park.hpp"
#include "runtime/tenant/tenant.hpp"
#include "support/align.hpp"
#include "support/cancel.hpp"
#include "support/sync.hpp"

namespace abp::runtime::tenant {

// Slot lifecycle states; see the header comment for the transition diagram.
enum class SlotState : std::uint8_t {
  kFree = 0,  // in the freelist (or being initialized by an admitter)
  kQueued,    // admitted, published, first job not yet started
  kRunning,   // first job won the CAS; the request dag is executing
  kShed,      // shedder won the CAS; first job will observe and finalize
};

// One admitted request. Preallocated (max_outstanding_total of them);
// `state` is the exactly-once arbiter, everything else is written by the
// admitter before the kQueued release-store publishes it. The fields the
// shedder's scan and the shutdown report read *without* first winning the
// state CAS (tenant_id, admit_seq, submit_ns) are relaxed atomics: those
// readers may race a concurrent re-initialization of a recycled slot by
// design, and every decision they feed is re-validated by a state CAS —
// the atomicity only keeps the racy reads well-defined. The remaining
// plain fields (kind, width, spin_ns) are read solely by the worker that
// acquired the slot through the kQueued->kRunning CAS, which synchronizes
// with the admitter's release-store.
struct alignas(kCacheLineSize) RequestSlot {
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(SlotState::kFree)};
  std::atomic<std::uint32_t> remaining{0};  // fan-in countdown (kFanOut)
  // Intrusive link: freelist (kFree) or intake stack (kQueued, pre-spawn).
  // A slot is in at most one list; the publishing CAS chains synchronize
  // the handoffs.
  RequestSlot* next = nullptr;
  std::atomic<TenantId> tenant_id{0};
  RequestKind kind = RequestKind::kFanOut;
  std::uint32_t width = 1;    // clamped >= 1 at admit
  std::uint32_t spin_ns = 0;  // busy-work per node
  std::atomic<std::uint64_t> admit_seq{0};
  std::atomic<std::uint64_t> submit_ns{0};  // admission time (latency base)
  // kOverload is stamped by the shed-losing first job (which owns the slot
  // from its failed CAS to push_free); reset at each admit.
  CancelSource cancel;
};

// Per-tenant monotone counters (seq_cst: they participate in the
// store-buffering handshakes with the parking lot and the conservation
// identities the tests gate on).
struct TenantCounters {
  std::atomic<std::uint64_t> submitted{0};
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> rejected_tenant_quota{0};
  std::atomic<std::uint64_t> rejected_global{0};
  std::atomic<std::uint64_t> rejected_stopped{0};
  std::atomic<std::uint64_t> timed_out{0};
  std::atomic<std::uint64_t> parked{0};  // blocking submits that slow-pathed
};

struct alignas(kCacheLineSize) TenantState {
  std::string name;
  Quota quota;
  std::atomic<std::size_t> outstanding{0};  // admitted, not yet finalized
  TenantCounters counters;
  // Completed-request latency (admission -> finalize), nanoseconds.
  // SpinLock, not Mutex: finalize runs in worker context, where blocking
  // mutex acquisition is forbidden (tools/context_lint.py).
  mutable sync::SpinLock lat_mu;
  obs::LatencyHistogram latency ABP_GUARDED_BY(lat_mu);
};

// Read-only per-tenant view (snapshot(); racy-but-coherent counters).
struct TenantSnapshot {
  TenantId id = 0;
  std::string name;
  std::uint32_t weight = 1;
  std::size_t max_outstanding = 0;
  std::size_t outstanding = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected_tenant_quota = 0;
  std::uint64_t rejected_global = 0;
  std::uint64_t rejected_stopped = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t parked = 0;
  obs::LatencyHistogram latency;  // copy, taken under lat_mu
};

// One tenant's row in the shutdown report. The two partition identities
// (checked by partitions_ok(), regression-gated by tests/test_tenant.cpp):
//
//   submitted == admitted + rejected_tenant_quota + rejected_global
//              + rejected_stopped + timed_out
//   admitted  == completed + shed
//              + abandoned_queued + abandoned_running + abandoned_shed
struct TenantRow {
  TenantId id = 0;
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected_tenant_quota = 0;
  std::uint64_t rejected_global = 0;
  std::uint64_t rejected_stopped = 0;
  std::uint64_t timed_out = 0;
  // Admitted but not finalized when the shutdown deadline expired,
  // classified by the slot state at snapshot time. All zero on a drained
  // shutdown.
  std::uint64_t abandoned_queued = 0;   // never started
  std::uint64_t abandoned_running = 0;  // dag was executing
  std::uint64_t abandoned_shed = 0;     // shed-marked, not yet finalized

  std::uint64_t rejected_total() const noexcept {
    return rejected_tenant_quota + rejected_global + rejected_stopped +
           timed_out;
  }
  std::uint64_t abandoned_total() const noexcept {
    return abandoned_queued + abandoned_running + abandoned_shed;
  }
  bool partitions_ok() const noexcept {
    return submitted == admitted + rejected_total() &&
           admitted == completed + shed + abandoned_total();
  }
};

// Outcome of TenantService::shutdown(deadline).
struct ShutdownReport {
  bool drained = false;    // every admitted request finalized in time
  bool timed_out = false;  // deadline expired with requests in flight
  // The per-tenant rows were captured with a retry loop (counters, slot
  // scan, counters again) until stable; false if the snapshot never
  // stabilized and the rows may be torn. Always true on a drained
  // shutdown.
  bool consistent = false;
  runtime::ShutdownReport scheduler;  // the underlying pool's report
  std::vector<TenantRow> tenants;
};

struct ServiceOptions {
  SchedulerOptions scheduler;
  std::size_t max_tenants = 16;
  // Global request-slot count == hard cap on admitted-but-unfinalized
  // requests across all tenants.
  std::size_t max_outstanding_total = 256;
  OverloadPolicy overload;
  // Test hook, called in worker context from finalize() after the counters
  // are updated and before the slot is recycled:
  // (tenant, admit_seq, completed) — completed=false means shed. Must be
  // worker-context safe (no blocking primitives).
  std::function<void(TenantId, std::uint64_t, bool)> on_finalize;
};

// The service. Lifecycle: construct, register_tenant() xN, start(),
// submit()/submit_blocking() from any thread, shutdown(deadline) (or let
// the destructor shut down with a default deadline). Registration, start
// and shutdown are control-plane operations — call them from one thread at
// a time; submits are fully concurrent.
class TenantService {
 public:
  explicit TenantService(ServiceOptions opts = {});
  ~TenantService();

  TenantService(const TenantService&) = delete;
  TenantService& operator=(const TenantService&) = delete;

  // Registers a tenant before start(); returns its id (dense from 0).
  TenantId register_tenant(std::string name, Quota quota = {});

  // Launches the scheduler pool, the dispatcher root and (if enabled) the
  // shedder thread. Idempotent.
  void start();

  // Non-blocking admission: a typed verdict, never a silent drop.
  SubmitResult submit(TenantId t, const RequestShape& shape);
  // Blocking admission: on a quota/global rejection, parks on the
  // futex-style lot and retries when capacity frees, until the timeout.
  SubmitResult submit_blocking(TenantId t, const RequestShape& shape,
                               std::chrono::milliseconds timeout);

  // Waits (sleep-polling) until every admitted request finalized; true on
  // success, false if the timeout expired first.
  bool drain(std::chrono::milliseconds timeout);

  // Stops admissions, drains up to `deadline`, stops the dispatcher and
  // shedder, shuts the pool down with the remaining budget, and reports
  // per-tenant abandonment classified by slot state. Idempotent (later
  // calls return the first report).
  ShutdownReport shutdown(std::chrono::milliseconds deadline);

  Scheduler& scheduler() noexcept { return *sched_; }
  const ServiceOptions& options() const noexcept { return opts_; }
  std::size_t tenant_count() const noexcept {
    return tenant_count_.load(std::memory_order_acquire);
  }
  std::size_t outstanding() const noexcept {
    return global_outstanding_.load(std::memory_order_seq_cst);
  }
  // Admitted-but-unstarted requests right now (slot scan; racy gauge).
  std::size_t queued_depth() const noexcept;
  std::uint64_t parked_submitters() const noexcept {
    return park_lot_.parked();
  }
  // Shed CASes won by the shedder so far (monotone; >= sum of per-tenant
  // shed counters until the marked slots finalize).
  std::uint64_t shed_marked() const noexcept {
    return shed_marked_.load(std::memory_order_seq_cst);
  }
  // Polls on which the shedder actually shed (monotone).
  std::uint64_t overload_rounds() const noexcept {
    return overload_rounds_.load(std::memory_order_seq_cst);
  }

  TenantSnapshot snapshot(TenantId t) const;
  std::vector<TenantSnapshot> snapshot_all() const;

  // Monotone counters only (aggregated across tenants): safe for the
  // metrics pump's METRICS_JSON stream, whose schema checker enforces
  // monotonicity over every totals key. Gauges live in prometheus_text().
  std::vector<obs::MetricPoint> live_sample() const;
  // Per-tenant labeled counters + latency histograms, plus service gauges.
  std::string prometheus_text() const;
  std::string stats_json() const;

 private:
  // ---- admission (control plane, submitter threads) ----
  SubmitResult submit_impl(TenantId t, const RequestShape& shape, bool block,
                           std::chrono::steady_clock::time_point deadline);
  RequestSlot* pop_free_slot() ABP_REQUIRES(admit_mu_);

  // ---- worker context (reachable from the dispatcher root) ----
  void dispatcher_loop(Worker& w);
  void spawn_request(Worker& w, RequestSlot* s);
  void run_first(Worker& w, RequestSlot* s);
  void run_stage(Worker& w, RequestSlot* s, std::uint32_t stage);
  void leaf_done(Worker& w, RequestSlot* s);
  void finalize(Worker& w, RequestSlot* s, bool completed);
  void push_free(RequestSlot* s) noexcept;

  // ---- shedder (control-plane watchdog thread) ----
  void shedder_main();
  // One overload evaluation + (maybe) shed pass; returns the queued depth
  // it saw. scratch holds (admit_seq, slot) pairs sampled by the scan — the
  // seq is re-checked before the shed CAS to skip recycled slots.
  std::size_t shedder_poll(
      std::vector<std::pair<std::uint64_t, RequestSlot*>>& scratch)
      ABP_REQUIRES(shed_mu_);

  ShutdownReport build_report(bool drained, bool timed_out,
                              runtime::ShutdownReport sched_rep);

  ServiceOptions opts_;
  std::size_t slot_count_ = 0;
  std::size_t queue_high_ = 0;  // resolved from OverloadPolicy in ctor
  std::size_t queue_low_ = 0;
  // Destroyed explicitly (sched_.reset()) at the end of ~TenantService:
  // ~Scheduler joins the pool workers, and they dereference slots_,
  // tenants_ and park_lot_ until the join completes, so the pool must die
  // before any of those — regardless of member order here.
  std::unique_ptr<Scheduler> sched_;
  std::unique_ptr<RequestSlot[]> slots_;
  std::unique_ptr<TenantState[]> tenants_;
  std::atomic<std::uint32_t> tenant_count_{0};

  // Admission: budgets + freelist pop serialized here. The freelist head
  // takes lock-free seq_cst pushes from finalize(); pops happen only under
  // this mutex.
  sync::Mutex admit_mu_;
  std::atomic<RequestSlot*> free_head_{nullptr};
  std::atomic<std::size_t> global_outstanding_{0};
  std::atomic<std::uint64_t> admit_seq_{1};  // 0 means "not admitted"

  // MPSC intake: submitters CAS-prepend, the dispatcher exchanges the whole
  // stack out and reverses it for FIFO spawn order.
  std::atomic<RequestSlot*> intake_{nullptr};

  SubmitterParkingLot park_lot_;

  // Lifecycle flags. stopping_ gates admissions; stop_dispatcher_ +
  // force_stop_ drive the dispatcher's exit protocol.
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_dispatcher_{false};
  std::atomic<bool> force_stop_{false};

  // Shedder thread + its park/stop protocol (Scheduler watchdog pattern).
  sync::Mutex shed_mu_;
  sync::CondVar shed_cv_;
  bool shed_stop_ ABP_GUARDED_BY(shed_mu_) = false;
  // Consecutive overloaded polls (hysteresis); shedder-thread private.
  std::uint32_t shed_sustain_ ABP_GUARDED_BY(shed_mu_) = 0;
  std::thread shed_thread_;
  std::atomic<std::uint64_t> shed_marked_{0};
  std::atomic<std::uint64_t> overload_rounds_{0};

  std::thread server_thread_;  // runs sched_->run(dispatcher_loop)
  bool started_ = false;           // control plane
  bool shutdown_called_ = false;   // control plane
  bool server_joined_ = false;     // control plane
  ShutdownReport first_report_;    // control plane (idempotent shutdown)
};

}  // namespace abp::runtime::tenant
