#pragma once

// Multi-tenant overload-protection plane, shared vocabulary (DESIGN.md §16).
//
// Many tenants share one work-stealing pool; each submits request-shaped
// dags (RPC fan-out/fan-in, pipeline stages) through an admission
// controller carrying per-tenant quotas. Admission NEVER drops silently:
// every submit() returns a typed AdmitStatus, and every admitted request
// finishes in exactly one of two typed ways — completed, or shed by the
// overload watchdog via CancelReason::kOverload. The conservation
// identities the tests and the E29 harness gate on:
//
//   submitted == admitted + rejected_tenant_quota + rejected_global
//              + rejected_stopped + timed_out          (per tenant)
//   admitted  == completed + shed                      (per tenant, quiesced)

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "support/backoff.hpp"

namespace abp::runtime::tenant {

using TenantId = std::uint32_t;

// Per-tenant admission budget. `weight` is the tenant's share of reporting
// interest only (fairness ratios in E29 are measured per unit weight);
// `max_outstanding` is the hard cap the admission controller enforces.
struct Quota {
  std::size_t max_outstanding = 64;  // admitted-but-not-finalized requests
  std::uint32_t weight = 1;          // relative share, for fairness reports
};

// Typed admission verdict — the "never silent drops" half of the contract.
enum class AdmitStatus : std::uint8_t {
  kAdmitted = 0,
  kRejectedTenantQuota,  // tenant's max_outstanding budget exhausted
  kRejectedGlobalLimit,  // global slot table exhausted
  kRejectedStopped,      // service is shutting down
  kTimedOut,             // blocking submit: parked past its deadline
};

constexpr const char* to_string(AdmitStatus s) noexcept {
  switch (s) {
    case AdmitStatus::kAdmitted: return "admitted";
    case AdmitStatus::kRejectedTenantQuota: return "rejected-tenant-quota";
    case AdmitStatus::kRejectedGlobalLimit: return "rejected-global-limit";
    case AdmitStatus::kRejectedStopped: return "rejected-stopped";
    case AdmitStatus::kTimedOut: return "timed-out";
  }
  return "?";
}

// The two request-dag shapes the service knows how to spawn (the E29
// workload mix). Both quantize their work as `width` nodes of
// `spin_ns_per_node` busy-work each: kFanOut runs them in parallel
// (fan-out/fan-in: the last leaf to finish finalizes the request), kPipeline
// strictly in sequence (each stage spawns the next).
enum class RequestKind : std::uint8_t { kFanOut = 0, kPipeline };

struct RequestShape {
  RequestKind kind = RequestKind::kFanOut;
  std::uint32_t width = 8;             // leaves (fan-out) / stages (pipeline)
  std::uint32_t spin_ns_per_node = 2000;
};

// submit() result: the typed verdict plus, when admitted, the globally
// unique admission sequence number (never 0) that the on_finalize hook and
// the shed ordering use.
struct SubmitResult {
  AdmitStatus status = AdmitStatus::kRejectedStopped;
  std::uint64_t admit_seq = 0;  // 0 unless status == kAdmitted
  bool admitted() const noexcept { return status == AdmitStatus::kAdmitted; }
};

// Overload watchdog policy. The shedder thread polls every poll_ms and
// declares overload when the global queued (admitted-but-unstarted) depth
// exceeds queue_high AND the p99 age of those queued requests exceeds
// stale_p99_ms (0 disables the staleness term; 0 queue_high/low pick the
// defaults 3/4 and 1/4 of the global slot count). Overload must persist for
// sustain_polls consecutive polls before anything is shed — then the NEWEST
// admitted-but-unstarted requests are cancelled (CancelReason::kOverload)
// until the depth is back at queue_low. Running requests are never touched.
struct OverloadPolicy {
  bool enabled = true;
  std::uint32_t poll_ms = 5;
  std::size_t queue_high = 0;   // 0 -> 3/4 of max_outstanding_total
  std::size_t queue_low = 0;    // 0 -> 1/4 of max_outstanding_total
  double stale_p99_ms = 1.0;    // 0 -> depth-only trigger
  std::uint32_t sustain_polls = 2;
};

// Busy-work leaf body: spins for ~ns wall nanoseconds. Worker-context safe
// (no blocking primitives; steady_clock reads are vDSO calls).
inline void spin_for_ns(std::uint32_t ns) noexcept {
  if (ns == 0) return;
  const auto t0 = std::chrono::steady_clock::now();
  const auto dur = std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() - t0 < dur) cpu_relax();
}

// Steady-clock nanoseconds since an arbitrary epoch (latency arithmetic).
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace abp::runtime::tenant
