#pragma once

// Direct execution of a computation dag (dag::Dag) on real threads — the
// closest faithful implementation of the paper's Figure 3 loop:
//
//   * nodes are the scheduling unit (the deques hold ready nodes),
//   * executing a node enables 0, 1 or 2 children (discovered by atomically
//     decrementing the children's indegree counters),
//   * a process whose pop_bottom comes up empty becomes a thief: yield,
//     random victim, pop_top,
//   * the execution of the final node sets computationDone.
//
// This engine cross-validates the discrete-round simulator (src/sched)
// against real concurrency, and powers the real-machine ablation
// experiments (deque policy and yield policy under multiprogramming).

#include <cstdint>
#include <exception>
#include <functional>

#include "dag/dag.hpp"
#include "runtime/options.hpp"
#include "runtime/stats.hpp"
#include "support/cancel.hpp"

namespace abp::runtime {

enum class DagRunStatus : std::uint8_t {
  kCompleted,   // every node executed exactly once
  kCancelled,   // the cancel token fired; workers stopped at node boundaries
  kNodeFailed,  // a node body threw; the first exception is captured
};

const char* to_string(DagRunStatus s) noexcept;

// Optional per-node user code, run when a node is executed (in addition to
// the spin_per_node busy-work). May throw: the first exception is captured
// into the result — the engine's threads never terminate() — and the
// remaining workers stop at node boundaries.
using DagNodeBody = std::function<void(dag::NodeId)>;

struct DagRunResult {
  double seconds = 0.0;
  WorkerStats totals;
  std::uint64_t executed_nodes = 0;
  // Online work/span profile in *node* terms (each node = one unit of
  // work, matching dag::Dag::work() / critical_path_length()). The span is
  // folded along real enabling edges as the run executes: every node's
  // path is 1 + the max path over its executed predecessors, so on a
  // completed run measured_span_nodes equals the static critical path —
  // the cross-check tools/span_report.py performs.
  std::uint64_t measured_work_nodes = 0;
  std::uint64_t measured_span_nodes = 0;
  bool ok = false;  // all nodes executed exactly once
  DagRunStatus status = DagRunStatus::kCompleted;
  std::exception_ptr error;                   // kNodeFailed: first throw
  dag::NodeId failed_node = dag::kNoNode;     // kNodeFailed: its node
  CancelReason cancel_reason = CancelReason::kNone;  // kCancelled

  // Surfaces the run's failure as a typed exception (the captured node
  // exception, or CancelledError); no-op when status == kCompleted.
  void rethrow() const {
    if (status == DagRunStatus::kNodeFailed && error) {
      std::rethrow_exception(error);
    }
    if (status == DagRunStatus::kCancelled) throw CancelledError(cancel_reason);
  }
};

// Executes `d` with opts.num_workers processes. `spin_per_node` busy-loop
// iterations emulate the cost of the instruction a node represents (so that
// scheduling overhead does not dominate microscopic dags). `cancel` stops
// the run cooperatively at node boundaries; `body` is optional per-node
// user code (may throw, see DagNodeBody).
DagRunResult run_dag(const dag::Dag& d, const SchedulerOptions& opts,
                     std::uint32_t spin_per_node = 0, CancelToken cancel = {},
                     DagNodeBody body = {});

}  // namespace abp::runtime
