#pragma once

// Direct execution of a computation dag (dag::Dag) on real threads — the
// closest faithful implementation of the paper's Figure 3 loop:
//
//   * nodes are the scheduling unit (the deques hold ready nodes),
//   * executing a node enables 0, 1 or 2 children (discovered by atomically
//     decrementing the children's indegree counters),
//   * a process whose pop_bottom comes up empty becomes a thief: yield,
//     random victim, pop_top,
//   * the execution of the final node sets computationDone.
//
// This engine cross-validates the discrete-round simulator (src/sched)
// against real concurrency, and powers the real-machine ablation
// experiments (deque policy and yield policy under multiprogramming).

#include <cstdint>

#include "dag/dag.hpp"
#include "runtime/options.hpp"
#include "runtime/stats.hpp"

namespace abp::runtime {

struct DagRunResult {
  double seconds = 0.0;
  WorkerStats totals;
  std::uint64_t executed_nodes = 0;
  bool ok = false;  // all nodes executed exactly once
};

// Executes `d` with opts.num_workers processes. `spin_per_node` busy-loop
// iterations emulate the cost of the instruction a node represents (so that
// scheduling overhead does not dominate microscopic dags).
DagRunResult run_dag(const dag::Dag& d, const SchedulerOptions& opts,
                     std::uint32_t spin_per_node = 0);

}  // namespace abp::runtime
