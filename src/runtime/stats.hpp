#pragma once

// Per-worker and aggregated scheduler statistics. Counters are plain (not
// atomic): each worker mutates only its own cache-line-padded slot; they
// are read after the pool quiesces.

#include <cstdint>
#include <vector>

#include "support/align.hpp"

namespace abp::runtime {

struct WorkerStats {
  std::uint64_t jobs_executed = 0;
  std::uint64_t spawns = 0;
  std::uint64_t pop_bottom_hits = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steals = 0;
  // Failed attempts, split by reason: the victim's popTop lost a CAS race
  // (contended, non-empty victim) vs. the victim deque was empty — the two
  // failure modes §3.2's relaxed semantics deliberately fold together.
  // Invariant: steal_attempts == steals + steal_cas_failures +
  // steal_empty_victim (a self-steal counts as an empty victim).
  std::uint64_t steal_cas_failures = 0;
  std::uint64_t steal_empty_victim = 0;
  std::uint64_t yields = 0;
  std::uint64_t overflow_inline_runs = 0;
  // Steal-policy layer (DESIGN.md §12). batch_steals counts successful
  // pop_top_batch claims (each also counts once in `steals`);
  // batch_stolen_items is the total items those claims delivered, so
  // batch_stolen_items / batch_steals is the mean batch size. A batch of 1
  // still counts here when the steal_half policy issued it.
  std::uint64_t batch_steals = 0;
  std::uint64_t batch_stolen_items = 0;
  // Surplus batch items the thief failed to re-push (deque full/alloc
  // failure) and ran inline instead — degradation, not loss.
  std::uint64_t batch_surplus_inline_runs = 0;
  // Sum over successful steals of ring distance |thief - victim| (mod P);
  // divided by `steals` this is the mean victim distance the Chrome traces
  // chart per victim policy.
  std::uint64_t victim_distance_sum = 0;
  // Successful steals attributed to a non-uniform preference: the nearest-
  // neighbor probe, the watchdog hint, or the cached last victim.
  std::uint64_t preferred_victim_hits = 0;
  // Successful steals whose victim sits in a different locality domain
  // (SchedulerOptions::locality_domain_size; 0 with the default single
  // domain). steals - cross_domain_steals = local steals.
  std::uint64_t cross_domain_steals = 0;
  // Resilience-layer counters (all zero when the layer is idle).
  std::uint64_t cancelled_jobs = 0;        // jobs skipped after a cancel
  std::uint64_t parks = 0;                 // TaskGroup::wait cv parks
  std::uint64_t alloc_fail_inline_runs = 0;  // pushBottom kAllocFailed
  std::uint64_t backoff_yields = 0;        // steal-CAS backoff escalations
  // Simulated cache model (SchedulerOptions::cache_model; DESIGN.md §14).
  // Populated by the dag engine only; all zero when the model is off.
  // cache_misses - cache_steal_misses is the intrinsic miss count — the
  // split the Q1 + O(M/B · steals) cache-complexity gate relies on.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_steal_misses = 0;
  // Multi-tenant plane (src/runtime/tenant, DESIGN.md §16). All zero when
  // no TenantService runs on this scheduler. tenant_jobs counts detached
  // request-dag jobs this worker executed; the other two count requests
  // this worker *finalized* (summed across workers they partition every
  // admitted request: admitted == completed + shed at quiesce).
  std::uint64_t tenant_jobs = 0;
  std::uint64_t tenant_requests_completed = 0;
  std::uint64_t tenant_requests_shed = 0;

  void reset() { *this = WorkerStats{}; }

  WorkerStats& operator+=(const WorkerStats& o) {
    jobs_executed += o.jobs_executed;
    spawns += o.spawns;
    pop_bottom_hits += o.pop_bottom_hits;
    steal_attempts += o.steal_attempts;
    steals += o.steals;
    steal_cas_failures += o.steal_cas_failures;
    steal_empty_victim += o.steal_empty_victim;
    yields += o.yields;
    overflow_inline_runs += o.overflow_inline_runs;
    batch_steals += o.batch_steals;
    batch_stolen_items += o.batch_stolen_items;
    batch_surplus_inline_runs += o.batch_surplus_inline_runs;
    victim_distance_sum += o.victim_distance_sum;
    preferred_victim_hits += o.preferred_victim_hits;
    cross_domain_steals += o.cross_domain_steals;
    cancelled_jobs += o.cancelled_jobs;
    parks += o.parks;
    alloc_fail_inline_runs += o.alloc_fail_inline_runs;
    backoff_yields += o.backoff_yields;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_steal_misses += o.cache_steal_misses;
    tenant_jobs += o.tenant_jobs;
    tenant_requests_completed += o.tenant_requests_completed;
    tenant_requests_shed += o.tenant_requests_shed;
    return *this;
  }
};

using PaddedWorkerStats = CacheAligned<WorkerStats>;

}  // namespace abp::runtime
