#pragma once

// Runtime-selectable deque: wraps the three implementations behind one
// concrete type so the worker loop stays non-templated. The dispatch is a
// perfectly predicted branch on a per-instance constant; the experiments
// that compare deque policies (E10, E15) measure whole workloads, where
// this overhead is identical across policies.

#include <new>
#include <optional>
#include <variant>

#include "deque/abp_deque.hpp"
#include "deque/abp_growable_deque.hpp"
#include "deque/chase_lev_deque.hpp"
#include "deque/mutex_deque.hpp"
#include "deque/spinlock_deque.hpp"
#include "deque/split_deque.hpp"
#include "runtime/options.hpp"

namespace abp::runtime {

template <typename T>
class PolyDeque {
 public:
  // `enable_batch_steals` arms pop_top_batch on implementations that have
  // a native batched op (the growable ABP deque, which must also arm its
  // owner-side defended window); the rest ignore it and serve batch
  // requests as single steals.
  PolyDeque(DequePolicy policy, std::size_t capacity,
            std::size_t max_capacity = 0, bool enable_batch_steals = false) {
    switch (policy) {
      case DequePolicy::kAbp:
        impl_.template emplace<deque::AbpDeque<T>>(capacity);
        break;
      case DequePolicy::kAbpGrowable:
        impl_.template emplace<deque::AbpGrowableDeque<T>>(
            capacity, max_capacity, enable_batch_steals);
        break;
      case DequePolicy::kChaseLev:
        impl_.template emplace<deque::ChaseLevDeque<T>>();
        break;
      case DequePolicy::kSplit:
        impl_.template emplace<deque::SplitDeque<T>>(capacity);
        break;
      case DequePolicy::kMutex:
        impl_.template emplace<deque::MutexDeque<T>>();
        break;
      case DequePolicy::kSpinlock:
        impl_.template emplace<deque::SpinlockDeque<T>>();
        break;
    }
  }

  void push_bottom(T item) {
    std::visit([&](auto& d) { d.push_bottom(item); }, impl_);
  }
  // Non-throwing push: implementations with a native typed-status path
  // (the growable ABP deque) are called directly; for the rest a bad_alloc
  // from growth is mapped to kAllocFailed so it never unwinds the owner
  // out of its steal-critical window.
  deque::PushStatus push_bottom_ex(T item) {
    return std::visit(
        [&](auto& d) {
          if constexpr (requires { d.push_bottom_ex(item); }) {
            return d.push_bottom_ex(item);
          } else {
            try {
              d.push_bottom(item);
              return deque::PushStatus::kOk;
            } catch (const std::bad_alloc&) {
              return deque::PushStatus::kAllocFailed;
            }
          }
        },
        impl_);
  }
  std::optional<T> pop_bottom() {
    return std::visit([](auto& d) { return d.pop_bottom(); }, impl_);
  }
  std::optional<T> pop_top() {
    return std::visit([](auto& d) { return d.pop_top(); }, impl_);
  }
  deque::PopTopResult<T> pop_top_ex() {
    return std::visit([](auto& d) { return d.pop_top_ex(); }, impl_);
  }
  // Batched steal: native on deques that support it AND have it armed
  // (growable ABP with the popBottom defense enabled); everywhere else a
  // batch request degrades to a single pop_top_ex wrapped as a batch of
  // one, so steal_half callers work against every deque policy.
  deque::PopTopBatchResult<T> pop_top_batch(std::size_t k) {
    return std::visit(
        [&](auto& d) -> deque::PopTopBatchResult<T> {
          if constexpr (requires { d.pop_top_batch(k); }) {
            if constexpr (requires { d.batch_steals_enabled(); }) {
              if (!d.batch_steals_enabled()) return single_as_batch(d);
            }
            return d.pop_top_batch(k);
          } else {
            return single_as_batch(d);
          }
        },
        impl_);
  }
  bool empty_hint() const {
    return std::visit([](const auto& d) { return d.empty_hint(); }, impl_);
  }
  std::size_t size_hint() const {
    return std::visit([](const auto& d) { return d.size_hint(); }, impl_);
  }

 private:
  template <typename D>
  static deque::PopTopBatchResult<T> single_as_batch(D& d) {
    deque::PopTopBatchResult<T> r;
    auto one = d.pop_top_ex();
    r.status = one.status;
    if (one.item) {
      r.items[0] = *one.item;
      r.count = 1;
    }
    return r;
  }

  std::variant<deque::AbpDeque<T>, deque::AbpGrowableDeque<T>,
               deque::ChaseLevDeque<T>, deque::SplitDeque<T>,
               deque::MutexDeque<T>, deque::SpinlockDeque<T>>
      impl_;
};

}  // namespace abp::runtime
