#pragma once

// Configuration knobs for the real (std::thread-based) runtime. These are
// the ablation axes of experiments E10/E11/E16: the paper's claim is that
// the non-blocking deque and the yield discipline are both essential in
// practice whenever the machine is multiprogrammed (PA < P).

#include <cstddef>
#include <cstdint>

namespace abp::runtime {

enum class DequePolicy : std::uint8_t {
  kAbp,          // the paper's non-blocking deque (Figures 4-5)
  kAbpGrowable,  // extension: same algorithm over a growable buffer
  kChaseLev,     // modern growable non-blocking deque (comparator)
  kSplit,        // split public/private deque: fence-free owner fast path,
                 // explicit transfer publishes private work (DESIGN.md §17)
  kMutex,     // blocking deque, futex-based (waiters sleep)
  kSpinlock,  // blocking deque, test-and-set spinlock (1998-style; the
              // ablation baseline that exhibits lock-holder preemption)
};

enum class YieldPolicy : std::uint8_t {
  kNone,   // spin between steal attempts (ablation baseline)
  kYield,  // std::this_thread::yield() between steal attempts (the paper's
           // yield system call; on Linux, sched_yield)
  kSleep,  // yield + short sleep — our portable stand-in for the
           // priocntl-based yieldToAll of the Hood prototype: sleeping
           // guarantees every runnable process gets the processor before
           // the sleeper returns, at the cost of latency
};

// How much a successful steal takes from the victim. kStealHalf requires
// a deque with a batched top-side operation (kAbpGrowable, kSplit); other
// deque policies silently degrade to single-item steals.
enum class StealPolicy : std::uint8_t {
  kSingle,     // the paper's popTop: one item per successful steal
  kStealHalf,  // pop_top_batch: up to half the victim's deque in one
               // linearized claim; the thief runs the oldest item and
               // re-pushes the surplus to its own deque
};

// How a thief picks its victim. All strategies fall back to a fresh
// uniform draw when their preferred victim yields nothing, so the paper's
// throw-bound analysis (which assumes uniform victim choice) still upper
// bounds every policy here.
enum class VictimPolicy : std::uint8_t {
  kUniform,          // uniform random victim (the paper's algorithm)
  kNearestNeighbor,  // ring probing: distance 1, 2, ... from the thief —
                     // locality-aware (neighbors share cache/NUMA domains)
  kHintAware,        // follow the watchdog's steal hint (PR-4) when one is
                     // posted, else uniform
  kLastVictim,       // re-try the last successfully robbed victim first
                     // (victims with deep deques stay good for a while),
                     // else uniform
};

const char* to_string(DequePolicy p) noexcept;
const char* to_string(YieldPolicy p) noexcept;
const char* to_string(StealPolicy p) noexcept;
const char* to_string(VictimPolicy p) noexcept;

// Knobs for the resilience layer (dynamic membership, watchdog, parking,
// steal backoff). All default OFF / zero so the baseline experiments keep
// their exact hot path; the chaos/resilience tests opt in per scenario.
struct ResilienceOptions {
  // Upper bound on concurrently live workers (worker slots are preallocated
  // up to this). 0 = num_workers, i.e. no headroom for add_worker().
  std::size_t max_workers = 0;
  // Watchdog monitor: a background thread that polls per-worker heartbeats
  // and re-targets the deque of any worker stalled past the deadline.
  bool watchdog = false;
  std::uint32_t watchdog_poll_ms = 10;
  std::uint32_t stall_deadline_ms = 200;
  // TaskGroup::wait parking: after this many consecutive failed steal
  // attempts inside a wait, the waiter parks on a condition variable until
  // a completion (or the timeout) wakes it. 0 = never park (pure ABP spin
  // discipline, the paper's model).
  std::uint32_t park_after_failed_steals = 0;
  std::uint32_t park_timeout_us = 500;
  // Bounded exponential backoff with yield escalation on repeated
  // steal-CAS failure (extends the §3 yield discipline).
  bool steal_backoff = false;
};

struct SchedulerOptions {
  std::size_t num_workers = 0;  // 0 = hardware_concurrency()
  // Dag engine only (§3.1's two-children case): execute the current
  // thread's continuation and push the newly enabled node, instead of the
  // default depth-first child-first order. The paper's bounds hold either
  // way (see experiment E18).
  bool dag_parent_first = false;
  DequePolicy deque = DequePolicy::kAbp;
  YieldPolicy yield = YieldPolicy::kYield;
  std::size_t deque_capacity = 1u << 16;  // for the fixed-size ABP deque
  // Growth bound for kAbpGrowable (0 = unbounded). A grow past the bound
  // reports PushStatus::kAllocFailed and the worker degrades by running
  // the job inline (see Worker::push).
  std::size_t deque_max_capacity = 0;
  // Steal-policy layer (see DESIGN.md §12). steal_half needs a batched
  // deque op (the growable ABP or split deque); with any other deque
  // policy it degrades to single-item steals.
  StealPolicy steal_policy = StealPolicy::kSingle;
  VictimPolicy victim_policy = VictimPolicy::kUniform;
  // Per-steal batch cap for kStealHalf; clamped to deque::kMaxStealBatch
  // (the width of the owner-defended window — a hard correctness bound).
  std::size_t steal_batch_limit = 8;
  std::uint64_t seed = 0x5eed;
  std::uint32_t sleep_us = 50;  // kSleep pause between steal attempts
  // Per-worker telemetry ring capacity (events; rounded up to a power of
  // two). Only consulted when the WHEN_TRACE hooks are compiled in.
  std::size_t trace_ring_capacity = 1u << 14;
  // Locality domains for steal provenance (DESIGN.md §13): workers i and j
  // share a domain iff i/size == j/size; a successful steal across domains
  // bumps WorkerStats::cross_domain_steals. 0 = one global domain (every
  // steal local) — the default keeps the counter inert until a NUMA-style
  // topology is modeled.
  std::size_t locality_domain_size = 0;
  // Live metrics plane (DESIGN.md §13): how often a worker publishes its
  // counters + histograms into its seqlock slot, checked at job boundaries
  // against the TSC. Only consulted when WHEN_TRACE is compiled in; 0
  // disables publication (live_snapshot then reports nothing mid-run).
  std::uint32_t live_publish_interval_us = 100;
  // Simulated per-worker cache model for dag runs (DESIGN.md §14): when
  // enabled, run_dag charges every node's footprint against the executing
  // worker's LRU cache and attributes misses to steals vs. intrinsic
  // (WorkerStats::cache_*). Off by default — the model adds per-node cost
  // to the execute path, so it must never ride along in benchmarks.
  bool cache_model = false;
  std::size_t cache_capacity_blocks = 64;
  std::size_t cache_nodes_per_block = 4;
  ResilienceOptions resilience{};
};

}  // namespace abp::runtime
