#pragma once

// Configuration knobs for the real (std::thread-based) runtime. These are
// the ablation axes of experiments E10/E11/E16: the paper's claim is that
// the non-blocking deque and the yield discipline are both essential in
// practice whenever the machine is multiprogrammed (PA < P).

#include <cstddef>
#include <cstdint>

namespace abp::runtime {

enum class DequePolicy : std::uint8_t {
  kAbp,          // the paper's non-blocking deque (Figures 4-5)
  kAbpGrowable,  // extension: same algorithm over a growable buffer
  kChaseLev,     // modern growable non-blocking deque (comparator)
  kMutex,     // blocking deque, futex-based (waiters sleep)
  kSpinlock,  // blocking deque, test-and-set spinlock (1998-style; the
              // ablation baseline that exhibits lock-holder preemption)
};

enum class YieldPolicy : std::uint8_t {
  kNone,   // spin between steal attempts (ablation baseline)
  kYield,  // std::this_thread::yield() between steal attempts (the paper's
           // yield system call; on Linux, sched_yield)
  kSleep,  // yield + short sleep — our portable stand-in for the
           // priocntl-based yieldToAll of the Hood prototype: sleeping
           // guarantees every runnable process gets the processor before
           // the sleeper returns, at the cost of latency
};

const char* to_string(DequePolicy p) noexcept;
const char* to_string(YieldPolicy p) noexcept;

// Knobs for the resilience layer (dynamic membership, watchdog, parking,
// steal backoff). All default OFF / zero so the baseline experiments keep
// their exact hot path; the chaos/resilience tests opt in per scenario.
struct ResilienceOptions {
  // Upper bound on concurrently live workers (worker slots are preallocated
  // up to this). 0 = num_workers, i.e. no headroom for add_worker().
  std::size_t max_workers = 0;
  // Watchdog monitor: a background thread that polls per-worker heartbeats
  // and re-targets the deque of any worker stalled past the deadline.
  bool watchdog = false;
  std::uint32_t watchdog_poll_ms = 10;
  std::uint32_t stall_deadline_ms = 200;
  // TaskGroup::wait parking: after this many consecutive failed steal
  // attempts inside a wait, the waiter parks on a condition variable until
  // a completion (or the timeout) wakes it. 0 = never park (pure ABP spin
  // discipline, the paper's model).
  std::uint32_t park_after_failed_steals = 0;
  std::uint32_t park_timeout_us = 500;
  // Bounded exponential backoff with yield escalation on repeated
  // steal-CAS failure (extends the §3 yield discipline).
  bool steal_backoff = false;
};

struct SchedulerOptions {
  std::size_t num_workers = 0;  // 0 = hardware_concurrency()
  // Dag engine only (§3.1's two-children case): execute the current
  // thread's continuation and push the newly enabled node, instead of the
  // default depth-first child-first order. The paper's bounds hold either
  // way (see experiment E18).
  bool dag_parent_first = false;
  DequePolicy deque = DequePolicy::kAbp;
  YieldPolicy yield = YieldPolicy::kYield;
  std::size_t deque_capacity = 1u << 16;  // for the fixed-size ABP deque
  // Growth bound for kAbpGrowable (0 = unbounded). A grow past the bound
  // reports PushStatus::kAllocFailed and the worker degrades by running
  // the job inline (see Worker::push).
  std::size_t deque_max_capacity = 0;
  std::uint64_t seed = 0x5eed;
  std::uint32_t sleep_us = 50;  // kSleep pause between steal attempts
  // Per-worker telemetry ring capacity (events; rounded up to a power of
  // two). Only consulted when the WHEN_TRACE hooks are compiled in.
  std::size_t trace_ring_capacity = 1u << 14;
  ResilienceOptions resilience{};
};

}  // namespace abp::runtime
