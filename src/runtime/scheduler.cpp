#include "runtime/scheduler.hpp"

namespace abp::runtime {

const char* to_string(DequePolicy p) noexcept {
  switch (p) {
    case DequePolicy::kAbp: return "abp";
    case DequePolicy::kAbpGrowable: return "abp-growable";
    case DequePolicy::kChaseLev: return "chase-lev";
    case DequePolicy::kMutex: return "mutex";
    case DequePolicy::kSpinlock: return "spinlock";
  }
  return "?";
}

const char* to_string(YieldPolicy p) noexcept {
  switch (p) {
    case YieldPolicy::kNone: return "none";
    case YieldPolicy::kYield: return "yield";
    case YieldPolicy::kSleep: return "sleep";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerOptions opts) : opts_(opts) {
  std::size_t n = opts_.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  opts_.num_workers = n;

  deques_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    deques_.push_back(std::make_unique<PolyDeque<Job*>>(
        opts_.deque, opts_.deque_capacity));
  stats_.resize(n);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->id_ = i;
    w->sched_ = this;
    w->deque_ = deques_[i].get();
    w->stats_ = &stats_[i];
    w->rng_.reseed(opts_.seed * 0x9e3779b97f4a7c15ULL + i + 1);
    workers_.push_back(std::move(w));
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_workers_.notify_all();
  for (auto& t : threads_) t.join();
}

void Scheduler::run_root(Job* root) {
  std::unique_lock<std::mutex> lock(mu_);
  ABP_ASSERT_MSG(done_.load(std::memory_order_acquire),
                 "Scheduler::run is not reentrant");
  parked_ = 0;
  done_.store(false, std::memory_order_release);
  root_job_.store(root, std::memory_order_release);
  ++epoch_;
  cv_workers_.notify_all();
  cv_main_.wait(lock, [this] { return parked_ == num_workers(); });
}

void Scheduler::worker_main(std::size_t id) {
  Worker& self = *workers_[id];
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_workers_.wait(lock,
                       [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    work_loop(self);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++parked_;
      if (parked_ == num_workers()) cv_main_.notify_one();
    }
  }
}

void Scheduler::work_loop(Worker& w) {
  // The Figure 3 scheduling loop. The assigned job is `j`; termination is
  // the computationDone flag (here: completion of the root job).
  Job* j = nullptr;
  for (;;) {
    if (j != nullptr) {
      w.execute(j);
      j = w.pop_bottom();
      continue;
    }
    if (done()) return;
    // Thief: claim the root job if it is still unclaimed, otherwise yield
    // and attempt a steal from a random victim.
    j = root_job_.exchange(nullptr, std::memory_order_acq_rel);
    if (j != nullptr) continue;
    w.yield_between_steals();
    j = w.try_steal();
  }
}

WorkerStats Scheduler::total_stats() const {
  WorkerStats total;
  for (const auto& s : stats_) total += s.value;
  return total;
}

void Scheduler::reset_stats() {
  ABP_ASSERT_MSG(done_.load(std::memory_order_acquire),
                 "reset_stats while running");
  for (auto& s : stats_) s.value.reset();
}

}  // namespace abp::runtime
