#include "runtime/scheduler.hpp"

#include <algorithm>

#include "obs/export.hpp"

namespace abp::runtime {

const char* to_string(DequePolicy p) noexcept {
  switch (p) {
    case DequePolicy::kAbp: return "abp";
    case DequePolicy::kAbpGrowable: return "abp-growable";
    case DequePolicy::kChaseLev: return "chase-lev";
    case DequePolicy::kSplit: return "split";
    case DequePolicy::kMutex: return "mutex";
    case DequePolicy::kSpinlock: return "spinlock";
  }
  return "?";
}

const char* to_string(YieldPolicy p) noexcept {
  switch (p) {
    case YieldPolicy::kNone: return "none";
    case YieldPolicy::kYield: return "yield";
    case YieldPolicy::kSleep: return "sleep";
  }
  return "?";
}

const char* to_string(StealPolicy p) noexcept {
  switch (p) {
    case StealPolicy::kSingle: return "single";
    case StealPolicy::kStealHalf: return "steal-half";
  }
  return "?";
}

const char* to_string(VictimPolicy p) noexcept {
  switch (p) {
    case VictimPolicy::kUniform: return "uniform";
    case VictimPolicy::kNearestNeighbor: return "nearest-neighbor";
    case VictimPolicy::kHintAware: return "hint-aware";
    case VictimPolicy::kLastVictim: return "last-victim";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerOptions opts) : opts_(opts) {
  std::size_t n = opts_.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  opts_.num_workers = n;
  max_workers_ = std::max(opts_.resilience.max_workers, n);
  watchdog_enabled_ = opts_.resilience.watchdog;
  steal_backoff_enabled_ = opts_.resilience.steal_backoff;

  // Preallocate every per-slot vector to max_workers_ so membership changes
  // never reallocate under concurrent readers (thieves index deques_ and
  // slot_state_ without mu_).
  deques_.resize(max_workers_);
  stats_.resize(max_workers_);
#if ABP_TRACE_ENABLED
  rings_.resize(max_workers_);
  telemetry_.resize(max_workers_);
  live_.resize(max_workers_);
  prov_ = decltype(prov_)(max_workers_);
#endif
  workers_.resize(max_workers_);
  threads_.resize(max_workers_);
  slot_state_ = decltype(slot_state_)(max_workers_);
  heartbeats_ = decltype(heartbeats_)(max_workers_);
  seen_epoch_.assign(max_workers_, 0);

  for (std::size_t i = 0; i < n; ++i) activate_slot(i, /*generation=*/0);
  for (std::size_t i = 0; i < n; ++i)
    threads_[i] = std::thread([this, i] { worker_main(i, /*initial_epoch=*/0); });

  if (watchdog_enabled_)
    watchdog_thread_ = std::thread([this] { watchdog_main(); });
}

Scheduler::~Scheduler() {
  {
    sync::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_workers_.notify_all();
  join_workers();
  if (watchdog_thread_.joinable()) {
    {
      sync::MutexLock lock(wd_mu_);
      wd_stop_ = true;
    }
    wd_cv_.notify_all();
    watchdog_thread_.join();
  }
}

void Scheduler::join_workers() {
  for (auto& t : threads_)
    if (t.joinable()) t.join();
}

void Scheduler::activate_slot(std::size_t slot, std::uint64_t generation) {
  if (deques_[slot] == nullptr)
    deques_[slot] = std::make_unique<PolyDeque<Job*>>(
        opts_.deque, opts_.deque_capacity, opts_.deque_max_capacity,
        /*enable_batch_steals=*/opts_.steal_policy == StealPolicy::kStealHalf);
#if ABP_TRACE_ENABLED
  if (rings_[slot] == nullptr)
    rings_[slot] = std::make_unique<obs::TraceRing>(opts_.trace_ring_capacity);
  if (live_[slot] == nullptr)
    live_[slot] = std::make_unique<obs::Seqlock<LiveWorkerSample>>();
  if (prov_[slot].value.steals_from.empty())
    prov_[slot].value.resize(max_workers_);
#endif
  if (workers_[slot] == nullptr) {
    auto w = std::make_unique<Worker>();
    w->id_ = slot;
    w->sched_ = this;
    w->deque_ = deques_[slot].get();
    w->stats_ = &stats_[slot];
#if ABP_TRACE_ENABLED
    w->ring_ = rings_[slot].get();
    w->telemetry_ = &telemetry_[slot];
    w->live_ = live_[slot].get();
    w->prov_ = &prov_[slot].value;
    if (opts_.live_publish_interval_us > 0) {
      // Convert the configured cadence to ticks once; the hot-path check
      // is then a single rdtsc compare.
      const double ns_per_tick = obs::cached_tsc_calibration().ns_per_tick;
      w->publish_interval_ticks_ = static_cast<std::uint64_t>(
          static_cast<double>(opts_.live_publish_interval_us) * 1000.0 /
          (ns_per_tick > 0.0 ? ns_per_tick : 1.0));
      if (w->publish_interval_ticks_ == 0) w->publish_interval_ticks_ = 1;
    }
#endif
    workers_[slot] = std::move(w);
  }
  // Generation 0 reproduces the historical per-worker seeds; a respawned
  // worker gets a fresh, still-deterministic stream.
  workers_[slot]->rng_.reseed(opts_.seed * 0x9e3779b97f4a7c15ULL + slot + 1 +
                              generation * 0xda3e39cb94b95bdbULL);
  workers_[slot]->heartbeat_seq_ = 0;
  workers_[slot]->steal_backoff_.reset();
  heartbeats_[slot].value.store(0, std::memory_order_relaxed);
  slot_state_[slot].value.store(static_cast<std::uint8_t>(SlotState::kLive),
                                std::memory_order_release);
  live_workers_.fetch_add(1, std::memory_order_acq_rel);
  membership_epoch_.fetch_add(1, std::memory_order_release);
  const std::size_t count = slot_count_.load(std::memory_order_relaxed);
  if (slot + 1 > count) slot_count_.store(slot + 1, std::memory_order_release);
}

void Scheduler::exit_slot(std::size_t slot) {
  slot_state_[slot].value.store(static_cast<std::uint8_t>(SlotState::kDead),
                                std::memory_order_release);
  live_workers_.fetch_sub(1, std::memory_order_acq_rel);
  membership_epoch_.fetch_add(1, std::memory_order_release);
}

// Every live slot has entered the current epoch.
bool Scheduler::all_live_entered() const {
  const std::size_t n = slot_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (slot_state(i) == SlotState::kLive && seen_epoch_[i] != epoch_)
      return false;
  }
  return true;
}

std::size_t Scheduler::add_worker() {
  sync::MutexLock lock(mu_);
  if (stopped_ || shutdown_) throw SchedulerStoppedError();
  std::size_t slot = max_workers_;
  for (std::size_t i = 0; i < max_workers_; ++i) {
    if (slot_state(i) == SlotState::kEmpty) {
      slot = i;
      break;
    }
  }
  if (slot == max_workers_) {
    for (std::size_t i = 0; i < max_workers_; ++i) {
      if (slot_state(i) == SlotState::kDead) {
        slot = i;
        break;
      }
    }
  }
  if (slot == max_workers_)
    throw std::runtime_error(
        "add_worker: no free worker slot (raise ResilienceOptions::max_workers)");
  if (threads_[slot].joinable()) {
    // A dead occupant's thread marked its slot kDead and exited without
    // retaking mu_, so joining it here cannot deadlock.
    threads_[slot].join();
  }
  activate_slot(slot, ++membership_generation_);
  // Mid-run, hand the new worker a stale epoch so it enters the in-flight
  // run immediately; idle, have it park until the next run.
  const bool idle = done_.load(std::memory_order_acquire);
  const std::uint64_t initial = idle ? epoch_ : epoch_ - 1;
  seen_epoch_[slot] = initial;
  threads_[slot] = std::thread([this, slot, initial] {
    worker_main(slot, initial);
  });
  return slot;
}

bool Scheduler::retire_worker(std::size_t slot) {
  sync::MutexLock lock(mu_);
  if (slot >= slot_count_.load(std::memory_order_acquire)) return false;
  if (slot_state(slot) != SlotState::kLive) return false;
  slot_state_[slot].value.store(
      static_cast<std::uint8_t>(SlotState::kRetiring),
      std::memory_order_release);
  cv_workers_.notify_all();  // wake it if it is parked between runs
  return true;
}

ShutdownReport Scheduler::shutdown(std::chrono::milliseconds deadline) {
  ShutdownReport rep;
  {
    sync::MutexLock lock(mu_);
    if (shutdown_) {
      rep.drained = done_.load(std::memory_order_acquire) &&
                    active_in_epoch_ == 0;
      return rep;
    }
    stopped_ = true;  // run()/add_worker() refuse from here on
    cancel_.request(CancelReason::kDeadline);
    const bool quiesced =
        cv_main_.wait_for(mu_, deadline, [this]() ABP_REQUIRES(mu_) {
          return done_.load(std::memory_order_acquire) &&
                 active_in_epoch_ == 0;
        });
    if (!quiesced) {
      rep.timed_out = true;
      const std::size_t n = slot_count_.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i)
        if (deques_[i] != nullptr)
          rep.abandoned_queued += deques_[i]->size_hint();
      if (root_job_.load(std::memory_order_acquire) != nullptr)
        rep.abandoned_root = 1;
      rep.abandoned_jobs = rep.abandoned_queued + rep.abandoned_root;
      return rep;  // workers keep draining (as cancelled); the dtor joins them
    }
    shutdown_ = true;
  }  // release mu_ before joining so exiting workers can retake it
  cv_workers_.notify_all();
  join_workers();
  rep.drained = true;
  return rep;
}

void Scheduler::run_root(Job* root) {
  sync::MutexLock lock(mu_);
  if (stopped_) throw SchedulerStoppedError();
  ABP_ASSERT_MSG(done_.load(std::memory_order_acquire),
                 "Scheduler::run is not reentrant");
  cancel_.reset();
  done_.store(false, std::memory_order_release);
  root_job_.store(root, std::memory_order_release);
  ++epoch_;
  cv_workers_.notify_all();
  // Quiesce: every live worker has entered AND exited this epoch, and the
  // run completed — or every worker died first.
  cv_main_.wait(mu_, [this]() ABP_REQUIRES(mu_) {
    if (active_in_epoch_ != 0) return false;
    if (!all_live_entered()) return false;
    return done_.load(std::memory_order_acquire) ||
           live_workers_.load(std::memory_order_acquire) == 0;
  });
  if (!done_.load(std::memory_order_acquire)) {
    // Every worker died before any of them claimed the root (a claimed
    // root always runs to completion: no kill-safe point lies between the
    // claim and the execute, and the claimer cannot be retired mid-job).
    // Reclaim the root so the caller can destroy it, and surface the loss.
    root_job_.store(nullptr, std::memory_order_release);
    done_.store(true, std::memory_order_release);
    throw AllWorkersLostError();
  }
}

void Scheduler::worker_main(std::size_t slot, std::uint64_t initial_epoch) {
  Worker& self = *workers_[slot];
  std::uint64_t seen_epoch = initial_epoch;
  for (;;) {
    {
      sync::MutexLock lock(mu_);
      cv_workers_.wait(mu_, [&, this]() ABP_REQUIRES(mu_) {
        return shutdown_ || epoch_ != seen_epoch ||
               slot_state(slot) == SlotState::kRetiring;
      });
      if (shutdown_) {
        // Record this epoch as entered-and-exited so a run_root() caller
        // racing a concurrent shutdown() is not left waiting on us.
        seen_epoch_[slot] = epoch_;
        cv_main_.notify_all();
        return;
      }
      if (slot_state(slot) == SlotState::kRetiring) {
        exit_slot(slot);
        cv_main_.notify_all();
        return;
      }
      seen_epoch = epoch_;
      seen_epoch_[slot] = seen_epoch;
      ++active_in_epoch_;
    }
    bool dying = false;
    try {
      work_loop(self);
    } catch (const chaos::WorkerKilledError&) {
      // The chaos adversary destroyed this worker at a job boundary — the
      // runtime-level analogue of the kernel killing a process. Its deque
      // stays in the victim set, so any queued jobs still drain.
      dying = true;
    }
    {
      sync::MutexLock lock(mu_);
      --active_in_epoch_;
      if (!dying && slot_state(slot) == SlotState::kRetiring) dying = true;
      if (dying) exit_slot(slot);
      cv_main_.notify_all();
    }
    if (dying) {
      cv_workers_.notify_all();
      return;
    }
  }
}

void Scheduler::work_loop(Worker& w) {
  // The Figure 3 scheduling loop. The assigned job is `j`; termination is
  // the computationDone flag (here: completion of the root job).
  WHEN_TRACE(w.loop_start_tsc_ = obs::rdtsc(); w.first_steal_recorded_ = false;
             w.set_span(0, w.loop_start_tsc_); w.nested_ticks_ = 0;)
  Job* j = nullptr;
  for (;;) {
    if (watchdog_enabled_)
      heartbeats_[w.id_].value.store(++w.heartbeat_seq_,
                                     std::memory_order_relaxed);
    if (j != nullptr) {
      w.execute(j);
      j = nullptr;
      // No job is in hand between here and the next pop/claim/steal: the
      // only window where a chaos kill cannot void exactly-once delivery.
      CHAOS_POINT("sched.loop.job_boundary");
      j = w.pop_bottom();
      continue;
    }
    if (done() || slot_state(w.id_) == SlotState::kRetiring) {
      // Final unthrottled publication: after the epoch drains, the live
      // plane agrees exactly with the post-quiesce totals.
      WHEN_TRACE(w.publish_live_now(obs::rdtsc());)
      return;
    }
    // Thief: claim the root job if it is still unclaimed, otherwise yield
    // and attempt a steal from a random victim.
    CHAOS_POINT("sched.loop.steal_iter");
    CHAOS_POINT("sched.loop.job_boundary");
    j = root_job_.exchange(nullptr, std::memory_order_acq_rel);
    if (j != nullptr) continue;
    w.yield_between_steals();
    j = w.try_steal();
  }
}

void Scheduler::watchdog_main() {
  const auto poll = std::chrono::milliseconds(opts_.resilience.watchdog_poll_ms);
  const auto stall_deadline =
      std::chrono::milliseconds(opts_.resilience.stall_deadline_ms);
  std::vector<std::uint64_t> last_beat(max_workers_, 0);
  std::vector<std::chrono::steady_clock::time_point> last_change(max_workers_);
  std::vector<bool> flagged(max_workers_, false);
  auto now = std::chrono::steady_clock::now();
  for (auto& t : last_change) t = now;

  sync::MutexLock lock(wd_mu_);
  for (;;) {
    if (wd_cv_.wait_for(wd_mu_, poll,
                        [this]() ABP_REQUIRES(wd_mu_) { return wd_stop_; }))
      return;
    now = std::chrono::steady_clock::now();
    const std::size_t n = slot_count_.load(std::memory_order_acquire);
    if (done()) {
      // Idle between runs: parked workers legitimately stop beating.
      for (std::size_t i = 0; i < n; ++i) {
        last_beat[i] = heartbeats_[i].value.load(std::memory_order_relaxed);
        last_change[i] = now;
        flagged[i] = false;
      }
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (slot_state(i) != SlotState::kLive) {
        flagged[i] = false;
        continue;
      }
      const std::uint64_t beat =
          heartbeats_[i].value.load(std::memory_order_relaxed);
      if (beat != last_beat[i]) {
        last_beat[i] = beat;
        last_change[i] = now;
        if (flagged[i]) {
          flagged[i] = false;
          // The stalled worker resumed; drop the hint if still ours.
          std::size_t expected = i;
          steal_hint_.compare_exchange_strong(expected, kNoStealHint,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
        }
        continue;
      }
      if (!flagged[i] && now - last_change[i] >= stall_deadline) {
        // The paper's adversarial kernel has descheduled this process (or
        // its job is wedged). Re-target thieves at its deque so the jobs
        // it queued drain while it is gone.
        flagged[i] = true;
        stalls_detected_.fetch_add(1, std::memory_order_acq_rel);
        steal_hint_.store(i, std::memory_order_release);
      }
    }
  }
}

WorkerStats Scheduler::total_stats() const {
  WorkerStats total;
  for (const auto& s : stats_) total += s.value;
  return total;
}

void Scheduler::reset_stats() {
  ABP_ASSERT_MSG(done_.load(std::memory_order_acquire),
                 "reset_stats while running");
  for (auto& s : stats_) s.value.reset();
#if ABP_TRACE_ENABLED
  for (auto& r : rings_)
    if (r) r->clear();
  for (auto& t : telemetry_) t.value.reset();
  for (auto& p : prov_) p.value.reset();
  measured_tinf_ticks_ = 0;
#endif
}

#if ABP_TRACE_ENABLED

obs::WorkerTelemetry Scheduler::aggregate_telemetry() const {
  obs::WorkerTelemetry total;
  for (const auto& t : telemetry_) total.merge(t.value);
  return total;
}

std::string Scheduler::chrome_trace_json() const {
  const obs::TscCalibration cal = obs::calibrate_tsc();
  obs::ChromeTraceBuilder b;
  b.process_name(0, "abp runtime");
  const std::size_t n = num_workers();
  std::vector<std::vector<obs::TraceEvent>> snaps;
  snaps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) snaps.push_back(rings_[i]->snapshot());
  // Anchor the time axis at the earliest retained event so traces start
  // near t=0 regardless of process uptime.
  obs::TscCalibration anchored = cal;
  std::uint64_t first = ~std::uint64_t{0};
  for (const auto& s : snaps)
    if (!s.empty()) first = std::min(first, s.front().tsc);
  if (first != ~std::uint64_t{0}) anchored.origin = first;
  append_snapshots_to_trace(b, snaps, anchored, 0);
  return b.build();
}

std::string Scheduler::stats_json() const {
  const obs::TscCalibration cal = obs::calibrate_tsc();
  const WorkerStats t = total_stats();
  const obs::WorkerTelemetry tel = aggregate_telemetry();
  std::uint64_t recorded = 0, dropped = 0;
  for (const auto& r : rings_) {
    if (!r) continue;
    recorded += r->total_recorded();
    dropped += r->dropped();
  }
  obs::JsonObjectWriter w;
  w.add("workers", static_cast<std::uint64_t>(num_workers()));
  w.add("live_workers", static_cast<std::uint64_t>(live_workers()));
  w.add("membership_epoch", membership_epoch());
  w.add("stalls_detected", stalls_detected());
  w.add("jobs_executed", t.jobs_executed);
  w.add("spawns", t.spawns);
  w.add("pop_bottom_hits", t.pop_bottom_hits);
  w.add("steal_attempts", t.steal_attempts);
  w.add("steals", t.steals);
  w.add("steal_cas_failures", t.steal_cas_failures);
  w.add("steal_empty_victim", t.steal_empty_victim);
  w.add("yields", t.yields);
  w.add("overflow_inline_runs", t.overflow_inline_runs);
  w.add("batch_steals", t.batch_steals);
  w.add("batch_stolen_items", t.batch_stolen_items);
  w.add("batch_surplus_inline_runs", t.batch_surplus_inline_runs);
  w.add("victim_distance_sum", t.victim_distance_sum);
  w.add("preferred_victim_hits", t.preferred_victim_hits);
  w.add("cross_domain_steals", t.cross_domain_steals);
  w.add("cancelled_jobs", t.cancelled_jobs);
  w.add("parks", t.parks);
  w.add("alloc_fail_inline_runs", t.alloc_fail_inline_runs);
  w.add("backoff_yields", t.backoff_yields);
  w.add("cache_hits", t.cache_hits);
  w.add("cache_misses", t.cache_misses);
  w.add("cache_steal_misses", t.cache_steal_misses);
  w.add("tenant_jobs", t.tenant_jobs);
  w.add("tenant_requests_completed", t.tenant_requests_completed);
  w.add("tenant_requests_shed", t.tenant_requests_shed);
  w.add("trace_events", recorded);
  w.add("trace_dropped", dropped);
  {
    const obs::SpanProfile sp = span_profile();
    w.add("measured_t1_ticks", sp.t1_ticks);
    w.add("measured_tinf_ticks", sp.tinf_ticks);
    w.add("measured_parallelism", sp.parallelism());
  }
  w.add_raw("steal_latency_ns",
            obs::histogram_summary_json(tel.steal_latency, cal.ns_per_tick));
  w.add_raw("job_run_ns",
            obs::histogram_summary_json(tel.job_run, cal.ns_per_tick));
  w.add_raw("time_to_first_steal_ns",
            obs::histogram_summary_json(tel.time_to_first_steal,
                                        cal.ns_per_tick));
  return w.str();
}

Scheduler::LiveSnapshot Scheduler::live_snapshot() const {
  LiveSnapshot snap;
  const std::size_t n = num_workers();
  for (std::size_t i = 0; i < n; ++i) {
    if (live_[i] == nullptr) continue;
    std::uint64_t retries = 0;
    const LiveWorkerSample s = live_[i]->read(&retries);
    snap.read_retries += retries;
    if (s.publish_seq == 0) continue;  // this slot never published
    snap.stats += s.stats;
    snap.exec_self_ticks += s.tel.exec_self_ticks;
    snap.publishes += s.publish_seq;
    ++snap.workers_published;
  }
  return snap;
}

std::vector<obs::MetricPoint> Scheduler::live_sample() const {
  const LiveSnapshot s = live_snapshot();
  std::vector<obs::MetricPoint> out;
  out.reserve(14);
  auto add = [&out](const char* name, std::uint64_t v) {
    out.push_back({name, static_cast<double>(v)});
  };
  add("abp_jobs_executed", s.stats.jobs_executed);
  add("abp_spawns", s.stats.spawns);
  add("abp_steal_attempts", s.stats.steal_attempts);
  add("abp_steals", s.stats.steals);
  add("abp_steal_cas_failures", s.stats.steal_cas_failures);
  add("abp_steal_empty_victim", s.stats.steal_empty_victim);
  add("abp_cross_domain_steals", s.stats.cross_domain_steals);
  add("abp_yields", s.stats.yields);
  add("abp_cancelled_jobs", s.stats.cancelled_jobs);
  add("abp_cache_misses", s.stats.cache_misses);
  add("abp_cache_steal_misses", s.stats.cache_steal_misses);
  add("abp_tenant_jobs", s.stats.tenant_jobs);
  add("abp_tenant_requests_completed", s.stats.tenant_requests_completed);
  add("abp_tenant_requests_shed", s.stats.tenant_requests_shed);
  add("abp_exec_self_ticks", s.exec_self_ticks);
  add("abp_live_publishes", s.publishes);
  add("abp_workers_published", s.workers_published);
  add("abp_live_workers", live_workers());
  return out;
}

std::string Scheduler::prometheus_text() const {
  const obs::TscCalibration& cal = obs::cached_tsc_calibration();
  // One pass over the live slots: counters summed, histograms merged, all
  // from the same seqlock-consistent per-worker samples.
  WorkerStats t;
  obs::WorkerTelemetry tel;
  std::uint64_t publishes = 0;
  const std::size_t n = num_workers();
  for (std::size_t i = 0; i < n; ++i) {
    if (live_[i] == nullptr) continue;
    const LiveWorkerSample s = live_[i]->read();
    if (s.publish_seq == 0) continue;
    t += s.stats;
    tel.merge(s.tel);
    publishes += s.publish_seq;
  }
  obs::PrometheusWriter w;
  w.gauge("abp_workers", static_cast<double>(num_workers()));
  w.gauge("abp_live_workers", static_cast<double>(live_workers()));
  w.counter("abp_live_publishes_total", static_cast<double>(publishes));
  w.counter("abp_jobs_executed_total",
            static_cast<double>(t.jobs_executed));
  w.counter("abp_spawns_total", static_cast<double>(t.spawns));
  w.counter("abp_steal_attempts_total",
            static_cast<double>(t.steal_attempts));
  w.counter("abp_steals_total", static_cast<double>(t.steals));
  w.counter("abp_steal_cas_failures_total",
            static_cast<double>(t.steal_cas_failures));
  w.counter("abp_cross_domain_steals_total",
            static_cast<double>(t.cross_domain_steals));
  w.counter("abp_cache_misses_total", static_cast<double>(t.cache_misses));
  w.counter("abp_cache_steal_misses_total",
            static_cast<double>(t.cache_steal_misses));
  w.counter("abp_yields_total", static_cast<double>(t.yields));
  w.counter("abp_cancelled_jobs_total",
            static_cast<double>(t.cancelled_jobs));
  w.counter("abp_tenant_jobs_total", static_cast<double>(t.tenant_jobs));
  w.counter("abp_tenant_requests_completed_total",
            static_cast<double>(t.tenant_requests_completed));
  w.counter("abp_tenant_requests_shed_total",
            static_cast<double>(t.tenant_requests_shed));
  w.counter("abp_exec_self_ns_total",
            cal.ticks_to_ns(tel.exec_self_ticks));
  w.histogram("abp_steal_latency_ns", tel.steal_latency, cal.ns_per_tick);
  w.histogram("abp_job_run_ns", tel.job_run, cal.ns_per_tick);
  return w.str();
}

obs::SpanProfile Scheduler::span_profile() const {
  obs::SpanProfile sp;
  sp.tinf_ticks = measured_tinf_ticks_;
  for (const auto& t : telemetry_) sp.t1_ticks += t.value.exec_self_ticks;
  sp.tasks = total_stats().jobs_executed;
  return sp;
}

std::string Scheduler::steal_provenance_json() const {
  const std::size_t n = num_workers();
  std::string out = "{\"domain_size\":";
  out += std::to_string(opts_.locality_domain_size);
  out += ",\"workers\":" + std::to_string(n);
  std::uint64_t total_steals = 0, total_items = 0;
  out += ",\"steals\":[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out += ',';
    out += '[';
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint64_t c = v < prov_[i].value.steals_from.size()
                                  ? prov_[i].value.steals_from[v]
                                  : 0;
      total_steals += c;
      if (v) out += ',';
      out += std::to_string(c);
    }
    out += ']';
  }
  out += "],\"items\":[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out += ',';
    out += '[';
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint64_t c = v < prov_[i].value.items_from.size()
                                  ? prov_[i].value.items_from[v]
                                  : 0;
      total_items += c;
      if (v) out += ',';
      out += std::to_string(c);
    }
    out += ']';
  }
  out += "],\"total_steals\":" + std::to_string(total_steals);
  out += ",\"total_items\":" + std::to_string(total_items);
  out += ",\"cross_domain_steals\":" +
         std::to_string(total_stats().cross_domain_steals);
  out += '}';
  return out;
}

#else  // !ABP_TRACE_ENABLED

std::string Scheduler::chrome_trace_json() const {
  return "{\"traceEvents\":[]}";
}

std::string Scheduler::stats_json() const {
  const WorkerStats t = total_stats();
  obs::JsonObjectWriter w;
  w.add("workers", static_cast<std::uint64_t>(num_workers()));
  w.add("live_workers", static_cast<std::uint64_t>(live_workers()));
  w.add("membership_epoch", membership_epoch());
  w.add("stalls_detected", stalls_detected());
  w.add("jobs_executed", t.jobs_executed);
  w.add("spawns", t.spawns);
  w.add("pop_bottom_hits", t.pop_bottom_hits);
  w.add("steal_attempts", t.steal_attempts);
  w.add("steals", t.steals);
  w.add("steal_cas_failures", t.steal_cas_failures);
  w.add("steal_empty_victim", t.steal_empty_victim);
  w.add("yields", t.yields);
  w.add("overflow_inline_runs", t.overflow_inline_runs);
  w.add("batch_steals", t.batch_steals);
  w.add("batch_stolen_items", t.batch_stolen_items);
  w.add("batch_surplus_inline_runs", t.batch_surplus_inline_runs);
  w.add("victim_distance_sum", t.victim_distance_sum);
  w.add("preferred_victim_hits", t.preferred_victim_hits);
  w.add("cross_domain_steals", t.cross_domain_steals);
  w.add("cancelled_jobs", t.cancelled_jobs);
  w.add("parks", t.parks);
  w.add("alloc_fail_inline_runs", t.alloc_fail_inline_runs);
  w.add("backoff_yields", t.backoff_yields);
  w.add("cache_hits", t.cache_hits);
  w.add("cache_misses", t.cache_misses);
  w.add("cache_steal_misses", t.cache_steal_misses);
  w.add("tenant_jobs", t.tenant_jobs);
  w.add("tenant_requests_completed", t.tenant_requests_completed);
  w.add("tenant_requests_shed", t.tenant_requests_shed);
  w.add("trace_events", std::uint64_t{0});
  return w.str();
}

Scheduler::LiveSnapshot Scheduler::live_snapshot() const { return {}; }

std::vector<obs::MetricPoint> Scheduler::live_sample() const { return {}; }

std::string Scheduler::prometheus_text() const {
  // No live plane without the trace hooks: fall back to the post-quiesce
  // counters so dashboards keep working (call while quiesced).
  const WorkerStats t = total_stats();
  obs::PrometheusWriter w;
  w.gauge("abp_workers", static_cast<double>(num_workers()));
  w.gauge("abp_live_workers", static_cast<double>(live_workers()));
  w.counter("abp_jobs_executed_total",
            static_cast<double>(t.jobs_executed));
  w.counter("abp_spawns_total", static_cast<double>(t.spawns));
  w.counter("abp_steal_attempts_total",
            static_cast<double>(t.steal_attempts));
  w.counter("abp_steals_total", static_cast<double>(t.steals));
  w.counter("abp_cross_domain_steals_total",
            static_cast<double>(t.cross_domain_steals));
  w.counter("abp_cache_misses_total", static_cast<double>(t.cache_misses));
  w.counter("abp_cache_steal_misses_total",
            static_cast<double>(t.cache_steal_misses));
  w.counter("abp_tenant_jobs_total", static_cast<double>(t.tenant_jobs));
  w.counter("abp_tenant_requests_completed_total",
            static_cast<double>(t.tenant_requests_completed));
  w.counter("abp_tenant_requests_shed_total",
            static_cast<double>(t.tenant_requests_shed));
  return w.str();
}

obs::SpanProfile Scheduler::span_profile() const { return {}; }

std::string Scheduler::steal_provenance_json() const {
  return "{\"domain_size\":" + std::to_string(opts_.locality_domain_size) +
         ",\"workers\":" + std::to_string(num_workers()) +
         ",\"steals\":[],\"items\":[],\"total_steals\":0,\"total_items\":0," +
         "\"cross_domain_steals\":" +
         std::to_string(total_stats().cross_domain_steals) + "}";
}

#endif  // ABP_TRACE_ENABLED

}  // namespace abp::runtime
