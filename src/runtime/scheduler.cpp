#include "runtime/scheduler.hpp"

#include <algorithm>

#include "obs/export.hpp"

namespace abp::runtime {

const char* to_string(DequePolicy p) noexcept {
  switch (p) {
    case DequePolicy::kAbp: return "abp";
    case DequePolicy::kAbpGrowable: return "abp-growable";
    case DequePolicy::kChaseLev: return "chase-lev";
    case DequePolicy::kMutex: return "mutex";
    case DequePolicy::kSpinlock: return "spinlock";
  }
  return "?";
}

const char* to_string(YieldPolicy p) noexcept {
  switch (p) {
    case YieldPolicy::kNone: return "none";
    case YieldPolicy::kYield: return "yield";
    case YieldPolicy::kSleep: return "sleep";
  }
  return "?";
}

Scheduler::Scheduler(SchedulerOptions opts) : opts_(opts) {
  std::size_t n = opts_.num_workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  opts_.num_workers = n;

  deques_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    deques_.push_back(std::make_unique<PolyDeque<Job*>>(
        opts_.deque, opts_.deque_capacity));
  stats_.resize(n);
#if ABP_TRACE_ENABLED
  rings_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    rings_.push_back(std::make_unique<obs::TraceRing>(
        opts_.trace_ring_capacity));
  telemetry_.resize(n);
#endif
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->id_ = i;
    w->sched_ = this;
    w->deque_ = deques_[i].get();
    w->stats_ = &stats_[i];
#if ABP_TRACE_ENABLED
    w->ring_ = rings_[i].get();
    w->telemetry_ = &telemetry_[i];
#endif
    w->rng_.reseed(opts_.seed * 0x9e3779b97f4a7c15ULL + i + 1);
    workers_.push_back(std::move(w));
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_workers_.notify_all();
  for (auto& t : threads_) t.join();
}

void Scheduler::run_root(Job* root) {
  std::unique_lock<std::mutex> lock(mu_);
  ABP_ASSERT_MSG(done_.load(std::memory_order_acquire),
                 "Scheduler::run is not reentrant");
  parked_ = 0;
  done_.store(false, std::memory_order_release);
  root_job_.store(root, std::memory_order_release);
  ++epoch_;
  cv_workers_.notify_all();
  cv_main_.wait(lock, [this] { return parked_ == num_workers(); });
}

void Scheduler::worker_main(std::size_t id) {
  Worker& self = *workers_[id];
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_workers_.wait(lock,
                       [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    work_loop(self);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++parked_;
      if (parked_ == num_workers()) cv_main_.notify_one();
    }
  }
}

void Scheduler::work_loop(Worker& w) {
  // The Figure 3 scheduling loop. The assigned job is `j`; termination is
  // the computationDone flag (here: completion of the root job).
  WHEN_TRACE(w.loop_start_tsc_ = obs::rdtsc(); w.first_steal_recorded_ = false;)
  Job* j = nullptr;
  for (;;) {
    if (j != nullptr) {
      w.execute(j);
      j = w.pop_bottom();
      continue;
    }
    if (done()) return;
    // Thief: claim the root job if it is still unclaimed, otherwise yield
    // and attempt a steal from a random victim.
    CHAOS_POINT("sched.loop.steal_iter");
    j = root_job_.exchange(nullptr, std::memory_order_acq_rel);
    if (j != nullptr) continue;
    w.yield_between_steals();
    j = w.try_steal();
  }
}

WorkerStats Scheduler::total_stats() const {
  WorkerStats total;
  for (const auto& s : stats_) total += s.value;
  return total;
}

void Scheduler::reset_stats() {
  ABP_ASSERT_MSG(done_.load(std::memory_order_acquire),
                 "reset_stats while running");
  for (auto& s : stats_) s.value.reset();
#if ABP_TRACE_ENABLED
  for (auto& r : rings_) r->clear();
  for (auto& t : telemetry_) t.value.reset();
#endif
}

#if ABP_TRACE_ENABLED

obs::WorkerTelemetry Scheduler::aggregate_telemetry() const {
  obs::WorkerTelemetry total;
  for (const auto& t : telemetry_) total.merge(t.value);
  return total;
}

std::string Scheduler::chrome_trace_json() const {
  const obs::TscCalibration cal = obs::calibrate_tsc();
  obs::ChromeTraceBuilder b;
  b.process_name(0, "abp runtime");
  std::vector<std::vector<obs::TraceEvent>> snaps;
  snaps.reserve(rings_.size());
  for (const auto& r : rings_) snaps.push_back(r->snapshot());
  // Anchor the time axis at the earliest retained event so traces start
  // near t=0 regardless of process uptime.
  obs::TscCalibration anchored = cal;
  std::uint64_t first = ~std::uint64_t{0};
  for (const auto& s : snaps)
    if (!s.empty()) first = std::min(first, s.front().tsc);
  if (first != ~std::uint64_t{0}) anchored.origin = first;
  append_snapshots_to_trace(b, snaps, anchored, 0);
  return b.build();
}

std::string Scheduler::stats_json() const {
  const obs::TscCalibration cal = obs::calibrate_tsc();
  const WorkerStats t = total_stats();
  const obs::WorkerTelemetry tel = aggregate_telemetry();
  std::uint64_t recorded = 0, dropped = 0;
  for (const auto& r : rings_) {
    recorded += r->total_recorded();
    dropped += r->dropped();
  }
  obs::JsonObjectWriter w;
  w.add("workers", static_cast<std::uint64_t>(num_workers()));
  w.add("jobs_executed", t.jobs_executed);
  w.add("spawns", t.spawns);
  w.add("pop_bottom_hits", t.pop_bottom_hits);
  w.add("steal_attempts", t.steal_attempts);
  w.add("steals", t.steals);
  w.add("steal_cas_failures", t.steal_cas_failures);
  w.add("steal_empty_victim", t.steal_empty_victim);
  w.add("yields", t.yields);
  w.add("overflow_inline_runs", t.overflow_inline_runs);
  w.add("trace_events", recorded);
  w.add("trace_dropped", dropped);
  w.add_raw("steal_latency_ns",
            obs::histogram_summary_json(tel.steal_latency, cal.ns_per_tick));
  w.add_raw("job_run_ns",
            obs::histogram_summary_json(tel.job_run, cal.ns_per_tick));
  w.add_raw("time_to_first_steal_ns",
            obs::histogram_summary_json(tel.time_to_first_steal,
                                        cal.ns_per_tick));
  return w.str();
}

#else  // !ABP_TRACE_ENABLED

std::string Scheduler::chrome_trace_json() const {
  return "{\"traceEvents\":[]}";
}

std::string Scheduler::stats_json() const {
  const WorkerStats t = total_stats();
  obs::JsonObjectWriter w;
  w.add("workers", static_cast<std::uint64_t>(num_workers()));
  w.add("jobs_executed", t.jobs_executed);
  w.add("spawns", t.spawns);
  w.add("pop_bottom_hits", t.pop_bottom_hits);
  w.add("steal_attempts", t.steal_attempts);
  w.add("steals", t.steals);
  w.add("steal_cas_failures", t.steal_cas_failures);
  w.add("steal_empty_victim", t.steal_empty_victim);
  w.add("yields", t.yields);
  w.add("overflow_inline_runs", t.overflow_inline_runs);
  w.add("trace_events", std::uint64_t{0});
  return w.str();
}

#endif  // ABP_TRACE_ENABLED

}  // namespace abp::runtime
