#pragma once

// The Hood-style runtime: P persistent worker threads ("processes" in the
// paper's vocabulary — the kernel schedules them onto however many
// processors it likes), each owning a work-stealing deque of jobs and
// running the Figure 3 scheduling loop:
//
//   * execute the assigned job; obtain the next assigned job by popping the
//     bottom of the own deque;
//   * with an empty deque, become a thief: perform the configured yield
//     call, pick a uniformly random victim, and attempt to pop the top of
//     the victim's deque.
//
// On top of the raw loop we provide a structured fork-join API (TaskGroup),
// which is how the Hood prototype's applications were written. The heavier
// "user-level threads that block and get re-enabled" model lives in
// src/fiber; a direct executor of computation dags lives in dag_engine.hpp.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/job.hpp"
#include "runtime/options.hpp"
#include "runtime/poly_deque.hpp"
#include "runtime/stats.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace abp::runtime {

class Scheduler;

// Execution context handed to every job; one per worker thread.
class Worker {
 public:
  std::size_t id() const noexcept { return id_; }
  Scheduler& scheduler() noexcept { return *sched_; }
  Xoshiro256& rng() noexcept { return rng_; }
  WorkerStats& stats() noexcept { return stats_->value; }
  JobPool& pool() noexcept { return pool_; }

  // Defined after Scheduler (they need its internals).
  inline void push(Job* j);
  inline Job* pop_bottom();
  inline Job* try_steal();
  inline void execute(Job* j);
  inline void yield_between_steals();

 private:
  friend class Scheduler;
  std::size_t id_ = 0;
  Scheduler* sched_ = nullptr;
  PolyDeque<Job*>* deque_ = nullptr;
  PaddedWorkerStats* stats_ = nullptr;
  Xoshiro256 rng_;
  JobPool pool_;
};

// Structured fork-join scope. spawn() pushes children onto the calling
// worker's deque; wait() participates in the scheduling loop (pops own
// deque, then steals) until every spawned child has completed. This is the
// standard blocking-join formulation used by work-stealing runtimes; the
// deque traffic it generates is exactly the paper's push_bottom /
// pop_bottom / pop_top pattern.
//
// Exceptions: a child throwing is captured (first one wins) and rethrown
// from wait(). The destructor drains outstanding children without
// rethrowing, so a TaskGroup unwinding through an exception stays safe.
class TaskGroup {
 public:
  explicit TaskGroup(Worker& w) : worker_(w) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup() { drain(); }

  template <typename F>
  inline void spawn(F&& f);

  // Drains until every child completed, then rethrows the first captured
  // child exception, if any.
  inline void wait();

  std::int64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  bool has_exception() const noexcept {
    return exception_state_.load(std::memory_order_acquire) == 2;
  }

 private:
  friend class Worker;
  inline void drain();

  void on_complete() noexcept {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void capture_exception(std::exception_ptr eptr) noexcept {
    int expected = 0;
    if (exception_state_.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      exception_ = std::move(eptr);
      exception_state_.store(2, std::memory_order_release);
    }
  }

  Worker& worker_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<int> exception_state_{0};  // 0 none, 1 storing, 2 stored
  std::exception_ptr exception_;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t num_workers() const noexcept { return workers_.size(); }
  const SchedulerOptions& options() const noexcept { return opts_; }

  // Runs `f(worker)` as the root job and blocks until it returns; an
  // exception escaping `f` is rethrown here, on the calling thread. Must
  // not be called from inside the pool. `f` should wait on its TaskGroups
  // before returning (structured parallelism).
  template <typename F>
  void run(F&& f) {
    Job root;  // stack-allocated: it never enters a pool
    std::atomic<bool>* done = &done_;
    std::exception_ptr root_exception;
    auto* eptr = &root_exception;
    root.group = nullptr;
    root.pooled = false;
    root.emplace([fn = std::forward<F>(f), done, eptr](Worker& w) mutable {
      try {
        fn(w);
      } catch (...) {
        *eptr = std::current_exception();
      }
      done->store(true, std::memory_order_release);
    });
    run_root(&root);
    if (root_exception) std::rethrow_exception(root_exception);
  }

  WorkerStats total_stats() const;
  const WorkerStats& worker_stats(std::size_t i) const {
    return stats_[i].value;
  }
  void reset_stats();

 private:
  friend class Worker;
  friend class TaskGroup;

  void run_root(Job* root);
  void worker_main(std::size_t id);
  void work_loop(Worker& w);

  bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  SchedulerOptions opts_;
  std::vector<std::unique_ptr<PolyDeque<Job*>>> deques_;
  std::vector<PaddedWorkerStats> stats_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<Job*> root_job_{nullptr};
  std::atomic<bool> done_{true};

  std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_main_;
  std::uint64_t epoch_ = 0;
  std::size_t parked_ = 0;
  bool shutdown_ = false;
};

// ---- inline implementations ------------------------------------------------

inline void Worker::push(Job* j) {
  // The ABP deque has fixed capacity; if a program spawns without bound,
  // degrade gracefully by running the job inline (serializing it), which
  // preserves correctness.
  if (deque_->size_hint() + 1 >= sched_->opts_.deque_capacity &&
      sched_->opts_.deque == DequePolicy::kAbp) {
    ++stats().overflow_inline_runs;
    execute(j);
    return;
  }
  ++stats().spawns;
  deque_->push_bottom(j);
}

inline Job* Worker::pop_bottom() {
  auto j = deque_->pop_bottom();
  if (j) {
    ++stats().pop_bottom_hits;
    return *j;
  }
  return nullptr;
}

inline Job* Worker::try_steal() {
  Scheduler& s = *sched_;
  const std::size_t p = s.num_workers();
  ++stats().steal_attempts;
  const auto victim = static_cast<std::size_t>(rng_.below(p));
  if (victim == id_) return nullptr;  // own deque is empty (we are a thief)
  auto j = s.deques_[victim]->pop_top();
  if (j) {
    ++stats().steals;
    return *j;
  }
  return nullptr;
}

inline void Worker::execute(Job* j) {
  ++stats().jobs_executed;
  TaskGroup* group = j->group;
  const bool pooled = j->pooled;
  j->run(*this);
  if (pooled) pool_.free(j);
  if (group != nullptr) group->on_complete();
}

inline void Worker::yield_between_steals() {
  switch (sched_->opts_.yield) {
    case YieldPolicy::kNone:
      break;
    case YieldPolicy::kYield:
      ++stats().yields;
      std::this_thread::yield();
      break;
    case YieldPolicy::kSleep:
      ++stats().yields;
      std::this_thread::sleep_for(
          std::chrono::microseconds(sched_->opts_.sleep_us));
      break;
  }
}

template <typename F>
inline void TaskGroup::spawn(F&& f) {
  Job* j = worker_.pool().alloc();
  j->group = this;
  j->pooled = true;
  j->emplace([this, fn = std::forward<F>(f)](Worker& w) mutable {
    try {
      fn(w);
    } catch (...) {
      capture_exception(std::current_exception());
    }
  });
  pending_.fetch_add(1, std::memory_order_acq_rel);
  worker_.push(j);
}

inline void TaskGroup::drain() {
  Worker& w = worker_;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (Job* j = w.pop_bottom()) {
      w.execute(j);
      continue;
    }
    // Own deque empty: help by stealing, with the configured yield first
    // (Figure 3, lines 14-17).
    w.yield_between_steals();
    if (Job* j = w.try_steal()) w.execute(j);
  }
}

inline void TaskGroup::wait() {
  drain();
  if (exception_state_.load(std::memory_order_acquire) == 2) {
    // Reset so a reused group can capture again; rethrow the first.
    std::exception_ptr eptr = exception_;
    exception_ = nullptr;
    exception_state_.store(0, std::memory_order_release);
    std::rethrow_exception(eptr);
  }
}

}  // namespace abp::runtime
