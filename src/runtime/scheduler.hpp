#pragma once
// atomics-lint: allow(runtime join/exception counters layered above the modeled deques)

// The Hood-style runtime: P persistent worker threads ("processes" in the
// paper's vocabulary — the kernel schedules them onto however many
// processors it likes), each owning a work-stealing deque of jobs and
// running the Figure 3 scheduling loop:
//
//   * execute the assigned job; obtain the next assigned job by popping the
//     bottom of the own deque;
//   * with an empty deque, become a thief: perform the configured yield
//     call, pick a uniformly random victim, and attempt to pop the top of
//     the victim's deque.
//
// On top of the raw loop we provide a structured fork-join API (TaskGroup),
// which is how the Hood prototype's applications were written. The heavier
// "user-level threads that block and get re-enabled" model lives in
// src/fiber; a direct executor of computation dags lives in dag_engine.hpp.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "obs/trace.hpp"
#if ABP_TRACE_ENABLED
#include "obs/metrics.hpp"
#include "obs/trace_ring.hpp"
#endif
#include "runtime/job.hpp"
#include "runtime/options.hpp"
#include "runtime/poly_deque.hpp"
#include "runtime/stats.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace abp::runtime {

class Scheduler;

// Execution context handed to every job; one per worker thread.
class Worker {
 public:
  std::size_t id() const noexcept { return id_; }
  Scheduler& scheduler() noexcept { return *sched_; }
  Xoshiro256& rng() noexcept { return rng_; }
  WorkerStats& stats() noexcept { return stats_->value; }
  JobPool& pool() noexcept { return pool_; }
#if ABP_TRACE_ENABLED
  obs::TraceRing& trace() noexcept { return *ring_; }
  obs::WorkerTelemetry& telemetry() noexcept { return telemetry_->value; }
#endif

  // Defined after Scheduler (they need its internals).
  inline void push(Job* j);
  inline Job* pop_bottom();
  inline Job* try_steal();
  inline void execute(Job* j);
  inline void yield_between_steals();

 private:
  friend class Scheduler;
  std::size_t id_ = 0;
  Scheduler* sched_ = nullptr;
  PolyDeque<Job*>* deque_ = nullptr;
  PaddedWorkerStats* stats_ = nullptr;
#if ABP_TRACE_ENABLED
  obs::TraceRing* ring_ = nullptr;
  CacheAligned<obs::WorkerTelemetry>* telemetry_ = nullptr;
  std::uint64_t loop_start_tsc_ = 0;  // work_loop entry, for time-to-first-steal
  bool first_steal_recorded_ = false;
#endif
  Xoshiro256 rng_;
  JobPool pool_;
};

// Structured fork-join scope. spawn() pushes children onto the calling
// worker's deque; wait() participates in the scheduling loop (pops own
// deque, then steals) until every spawned child has completed. This is the
// standard blocking-join formulation used by work-stealing runtimes; the
// deque traffic it generates is exactly the paper's push_bottom /
// pop_bottom / pop_top pattern.
//
// Exceptions: a child throwing is captured (first one wins) and rethrown
// from wait(). The destructor drains outstanding children without
// rethrowing, so a TaskGroup unwinding through an exception stays safe.
class TaskGroup {
 public:
  explicit TaskGroup(Worker& w) : worker_(w) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup() { drain(); }

  template <typename F>
  inline void spawn(F&& f);

  // Drains until every child completed, then rethrows the first captured
  // child exception, if any.
  inline void wait();

  std::int64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  bool has_exception() const noexcept {
    return exception_state_.load(std::memory_order_acquire) == 2;
  }

 private:
  friend class Worker;
  inline void drain();

  void on_complete() noexcept {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void capture_exception(std::exception_ptr eptr) noexcept {
    int expected = 0;
    if (exception_state_.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      exception_ = std::move(eptr);
      exception_state_.store(2, std::memory_order_release);
    }
  }

  Worker& worker_;
  std::atomic<std::int64_t> pending_{0};
  std::atomic<int> exception_state_{0};  // 0 none, 1 storing, 2 stored
  std::exception_ptr exception_;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t num_workers() const noexcept { return workers_.size(); }
  const SchedulerOptions& options() const noexcept { return opts_; }

  // Runs `f(worker)` as the root job and blocks until it returns; an
  // exception escaping `f` is rethrown here, on the calling thread. Must
  // not be called from inside the pool. `f` should wait on its TaskGroups
  // before returning (structured parallelism).
  template <typename F>
  void run(F&& f) {
    Job root;  // stack-allocated: it never enters a pool
    std::atomic<bool>* done = &done_;
    std::exception_ptr root_exception;
    auto* eptr = &root_exception;
    root.group = nullptr;
    root.pooled = false;
    root.emplace([fn = std::forward<F>(f), done, eptr](Worker& w) mutable {
      try {
        fn(w);
      } catch (...) {
        *eptr = std::current_exception();
      }
      done->store(true, std::memory_order_release);
    });
    run_root(&root);
    if (root_exception) std::rethrow_exception(root_exception);
  }

  WorkerStats total_stats() const;
  const WorkerStats& worker_stats(std::size_t i) const {
    return stats_[i].value;
  }
  void reset_stats();

  // ---- telemetry (src/obs) ----
  // True when the WHEN_TRACE hooks were compiled in (-DABP_TRACE=ON).
  static constexpr bool trace_compiled() noexcept {
    return ABP_TRACE_ENABLED != 0;
  }
  // Chrome-trace JSON of the per-worker event rings ({"traceEvents":[]}
  // when hooks are compiled out). Call only while quiesced.
  std::string chrome_trace_json() const;
  // One-line JSON: aggregated counters plus (when tracing) steal-latency /
  // job-run / time-to-first-steal histogram summaries in nanoseconds.
  std::string stats_json() const;
#if ABP_TRACE_ENABLED
  const obs::TraceRing& worker_trace(std::size_t i) const { return *rings_[i]; }
  // Histograms merged across workers. Call only while quiesced.
  obs::WorkerTelemetry aggregate_telemetry() const;
#endif

 private:
  friend class Worker;
  friend class TaskGroup;

  void run_root(Job* root);
  void worker_main(std::size_t id);
  void work_loop(Worker& w);

  bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  SchedulerOptions opts_;
  std::vector<std::unique_ptr<PolyDeque<Job*>>> deques_;
  std::vector<PaddedWorkerStats> stats_;
#if ABP_TRACE_ENABLED
  std::vector<std::unique_ptr<obs::TraceRing>> rings_;
  std::vector<CacheAligned<obs::WorkerTelemetry>> telemetry_;
#endif
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<Job*> root_job_{nullptr};
  std::atomic<bool> done_{true};

  std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_main_;
  std::uint64_t epoch_ = 0;
  std::size_t parked_ = 0;
  bool shutdown_ = false;
};

// ---- inline implementations ------------------------------------------------

inline void Worker::push(Job* j) {
  // The ABP deque has fixed capacity; if a program spawns without bound,
  // degrade gracefully by running the job inline (serializing it), which
  // preserves correctness.
  if (deque_->size_hint() + 1 >= sched_->opts_.deque_capacity &&
      sched_->opts_.deque == DequePolicy::kAbp) {
    ++stats().overflow_inline_runs;
    execute(j);
    return;
  }
  ++stats().spawns;
  WHEN_TRACE(ring_->record(obs::EventType::kSpawn, deque_->size_hint());)
  deque_->push_bottom(j);
}

inline Job* Worker::pop_bottom() {
  auto j = deque_->pop_bottom();
  if (j) {
    ++stats().pop_bottom_hits;
    WHEN_TRACE(ring_->record(obs::EventType::kPopBottomHit);)
    return *j;
  }
  WHEN_TRACE(ring_->record(obs::EventType::kPopBottomMiss);)
  return nullptr;
}

inline Job* Worker::try_steal() {
  Scheduler& s = *sched_;
  const std::size_t p = s.num_workers();
  ++stats().steal_attempts;
  WHEN_TRACE(const std::uint64_t t0 = obs::rdtsc();)
  const auto victim = static_cast<std::size_t>(rng_.below(p));
  WHEN_TRACE(ring_->record_at(t0, obs::EventType::kStealAttempt, victim);)
  if (victim == id_) {
    // Own deque is empty (we are a thief); counts as an empty victim.
    ++stats().steal_empty_victim;
    WHEN_TRACE(ring_->record(obs::EventType::kStealAbortEmpty, victim);)
    return nullptr;
  }
  CHAOS_POINT("sched.steal.pre_poptop");
  auto r = s.deques_[victim]->pop_top_ex();
  switch (r.status) {
    case deque::PopTopStatus::kSuccess: {
      ++stats().steals;
      WHEN_TRACE({
        const std::uint64_t latency = obs::rdtsc() - t0;
        ring_->record(obs::EventType::kStealSuccess, latency);
        telemetry_->value.steal_latency.record(latency);
        if (!first_steal_recorded_) {
          first_steal_recorded_ = true;
          telemetry_->value.time_to_first_steal.record(t0 - loop_start_tsc_);
        }
      })
      return *r.item;
    }
    case deque::PopTopStatus::kLostRace:
      ++stats().steal_cas_failures;
      WHEN_TRACE(ring_->record(obs::EventType::kStealAbortCas, victim);)
      return nullptr;
    case deque::PopTopStatus::kEmpty:
      break;
  }
  ++stats().steal_empty_victim;
  WHEN_TRACE(ring_->record(obs::EventType::kStealAbortEmpty, victim);)
  return nullptr;
}

inline void Worker::execute(Job* j) {
  ++stats().jobs_executed;
  TaskGroup* group = j->group;
  const bool pooled = j->pooled;
  WHEN_TRACE(const std::uint64_t t0 = obs::rdtsc();
             ring_->record_at(t0, obs::EventType::kJobBegin);)
  j->run(*this);
  WHEN_TRACE({
    const std::uint64_t dt = obs::rdtsc() - t0;
    ring_->record(obs::EventType::kJobEnd, dt);
    telemetry_->value.job_run.record(dt);
  })
  if (pooled) pool_.free(j);
  if (group != nullptr) group->on_complete();
}

inline void Worker::yield_between_steals() {
  CHAOS_POINT("sched.loop.pre_yield");
  switch (sched_->opts_.yield) {
    case YieldPolicy::kNone:
      break;
    case YieldPolicy::kYield:
      ++stats().yields;
      WHEN_TRACE(ring_->record(obs::EventType::kYield);)
      std::this_thread::yield();
      break;
    case YieldPolicy::kSleep:
      ++stats().yields;
      WHEN_TRACE(ring_->record(obs::EventType::kYield);)
      std::this_thread::sleep_for(
          std::chrono::microseconds(sched_->opts_.sleep_us));
      break;
  }
}

template <typename F>
inline void TaskGroup::spawn(F&& f) {
  Job* j = worker_.pool().alloc();
  j->group = this;
  j->pooled = true;
  j->emplace([this, fn = std::forward<F>(f)](Worker& w) mutable {
    try {
      fn(w);
    } catch (...) {
      capture_exception(std::current_exception());
    }
  });
  pending_.fetch_add(1, std::memory_order_acq_rel);
  worker_.push(j);
}

inline void TaskGroup::drain() {
  Worker& w = worker_;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (Job* j = w.pop_bottom()) {
      w.execute(j);
      continue;
    }
    // Own deque empty: help by stealing, with the configured yield first
    // (Figure 3, lines 14-17).
    w.yield_between_steals();
    if (Job* j = w.try_steal()) w.execute(j);
  }
}

inline void TaskGroup::wait() {
  drain();
  if (exception_state_.load(std::memory_order_acquire) == 2) {
    // Reset so a reused group can capture again; rethrow the first.
    std::exception_ptr eptr = exception_;
    exception_ = nullptr;
    exception_state_.store(0, std::memory_order_release);
    std::rethrow_exception(eptr);
  }
}

}  // namespace abp::runtime
