#pragma once
// atomics-lint: allow(runtime join/exception counters layered above the modeled deques)

// The Hood-style runtime: P persistent worker threads ("processes" in the
// paper's vocabulary — the kernel schedules them onto however many
// processors it likes), each owning a work-stealing deque of jobs and
// running the Figure 3 scheduling loop:
//
//   * execute the assigned job; obtain the next assigned job by popping the
//     bottom of the own deque;
//   * with an empty deque, become a thief: perform the configured yield
//     call, pick a uniformly random victim, and attempt to pop the top of
//     the victim's deque.
//
// On top of the raw loop we provide a structured fork-join API (TaskGroup),
// which is how the Hood prototype's applications were written. The heavier
// "user-level threads that block and get re-enabled" model lives in
// src/fiber; a direct executor of computation dags lives in dag_engine.hpp.
//
// Resilience layer (DESIGN.md §11). The paper's kernel adversarially grows
// and shrinks the set of running processes; this runtime mirrors that with
// *dynamic membership*: workers occupy preallocated slots (up to
// ResilienceOptions::max_workers) and can be added (add_worker) or retired
// (retire_worker) at runtime, each change bumping a membership epoch. A
// dead or retired worker's deque stays in the victim set forever, so its
// orphaned jobs are drained by surviving thieves — exactly-once delivery
// survives membership churn. Jobs that throw are captured into their
// TaskGroup and rethrown at wait(); chaos-injected worker kills
// (Action::kKill at the kill-safe "sched.loop.job_boundary" point) retire
// the worker the same way a kernel destroying a process would. A watchdog
// (optional) polls per-worker heartbeats and re-targets thieves at the
// deque of any worker stalled past a deadline. Cancellation is cooperative
// and quantized at job boundaries; shutdown(deadline) drains or reports
// abandoned jobs. Membership and shutdown calls are control-plane
// operations: make them from one thread at a time.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chaos/chaos.hpp"
#include "obs/pump.hpp"  // MetricPoint, for live_sample()
#include "obs/span.hpp"
#include "obs/trace.hpp"
#if ABP_TRACE_ENABLED
#include "obs/metrics.hpp"
#include "obs/seqlock.hpp"
#include "obs/trace_ring.hpp"
#endif
#include "runtime/job.hpp"
#include "runtime/options.hpp"
#include "runtime/poly_deque.hpp"
#include "runtime/stats.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/cancel.hpp"
#include "support/rng.hpp"
#include "support/sync.hpp"

namespace abp::runtime {

class Scheduler;

// Thrown by run() when every worker died (chaos kills, or retiring the
// whole pool) before any of them claimed the root job. The computation
// provably never started: a claimed root always runs to completion, because
// no kill-safe point lies between the claim and the execute.
class AllWorkersLostError : public std::runtime_error {
 public:
  AllWorkersLostError()
      : std::runtime_error("all workers lost before the root job ran") {}
};

// Thrown by run()/add_worker() after shutdown() has been called.
class SchedulerStoppedError : public std::runtime_error {
 public:
  SchedulerStoppedError() : std::runtime_error("scheduler is shut down") {}
};

// Outcome of Scheduler::shutdown(deadline).
struct ShutdownReport {
  bool drained = false;    // quiesced within the deadline; workers joined
  bool timed_out = false;  // deadline expired with work still in flight
  // Jobs still queued when the deadline expired — a snapshot: the
  // surviving workers keep draining them (as cancelled) after this
  // returns. Split by where the job sat (a TenantService further
  // classifies its requests by tenant and slot state, DESIGN.md §16);
  // abandoned_jobs stays the back-compat sum of the two.
  std::size_t abandoned_jobs = 0;
  std::size_t abandoned_queued = 0;  // still in some worker's deque
  std::size_t abandoned_root = 0;    // the root job, never claimed (0 or 1)
};

#if ABP_TRACE_ENABLED
// One worker's live publication (DESIGN.md §13): its counters and
// histograms, word-copied through a Seqlock so the metrics pump reads a
// torn-free sample mid-run without stopping the worker. Published at job
// boundaries and between steals, throttled by live_publish_interval_us.
struct LiveWorkerSample {
  std::uint64_t publish_tsc = 0;
  std::uint64_t publish_seq = 0;  // 0 = never published
  WorkerStats stats;
  obs::WorkerTelemetry tel;
};
static_assert(std::is_trivially_copyable_v<LiveWorkerSample>);
#endif

// Execution context handed to every job; one per worker thread.
class Worker {
 public:
  std::size_t id() const noexcept { return id_; }
  Scheduler& scheduler() noexcept { return *sched_; }
  Xoshiro256& rng() noexcept { return rng_; }
  WorkerStats& stats() noexcept { return stats_->value; }
  JobPool& pool() noexcept { return pool_; }
  // True when the scheduler's cancellation flag is up; long-running leaf
  // jobs poll this to stop early (spawned siblings are skipped
  // automatically at their job boundary).
  inline bool cancelled() const noexcept;
#if ABP_TRACE_ENABLED
  obs::TraceRing& trace() noexcept { return *ring_; }
  obs::WorkerTelemetry& telemetry() noexcept { return telemetry_->value; }

  // ---- causal span clock (DESIGN.md §13) ----
  // Path length, in ticks, of the dependency chain ending at this worker
  // at TSC `now`: the base path plus the time elapsed since the base was
  // set. Worker-local; only execute()/spawn()/joins touch the base.
  std::uint64_t span_now(std::uint64_t now) const noexcept {
    return span_base_path_ + (now - span_base_tsc_);
  }
  // Join fold: adopt `path` as the new base iff it is ahead of the local
  // clock (a child chain longer than the waiter's own). Monotone max, so
  // the measured span only grows along true dependency edges.
  void raise_span(std::uint64_t path, std::uint64_t now) noexcept {
    if (span_now(now) < path) {
      span_base_path_ = path;
      span_base_tsc_ = now;
    }
  }
  // Rebase the clock outright (join entry/exit: a waiter's spin time while
  // blocked at a join is not chain time).
  void set_span(std::uint64_t path, std::uint64_t now) noexcept {
    span_base_path_ = path;
    span_base_tsc_ = now;
  }
  // Globally unique task id: (worker << 48) | per-worker sequence.
  std::uint64_t alloc_provenance() noexcept {
    return obs::make_provenance_id(id_, ++provenance_seq_);
  }
  // Publish counters + histograms into this worker's seqlock slot if the
  // configured interval elapsed. Called at job boundaries and between
  // steals; cheap when throttled (one rdtsc compare).
  inline void maybe_publish_live(std::uint64_t now) noexcept;
  // Unthrottled publish; the work loop calls it once on epoch exit so the
  // post-quiesce live snapshot equals the true totals exactly.
  inline void publish_live_now(std::uint64_t now) noexcept;
#endif

  // Defined after Scheduler (they need its internals).
  inline void push(Job* j);
  inline Job* pop_bottom();
  inline Job* try_steal();
  inline void execute(Job* j);
  inline void yield_between_steals();
  // Spawns a group-less, always-runs job (the multi-tenant plane's
  // request dags, DESIGN.md §16). The closure owns its own completion
  // accounting: no TaskGroup is notified, scheduler-level cancellation
  // does not skip it, and nothing rethrows — `f` must not leak exceptions.
  template <typename F>
  inline void spawn_detached(F&& f);

 private:
  friend class Scheduler;
  std::size_t id_ = 0;
  Scheduler* sched_ = nullptr;
  PolyDeque<Job*>* deque_ = nullptr;
  PaddedWorkerStats* stats_ = nullptr;
#if ABP_TRACE_ENABLED
  obs::TraceRing* ring_ = nullptr;
  CacheAligned<obs::WorkerTelemetry>* telemetry_ = nullptr;
  std::uint64_t loop_start_tsc_ = 0;  // work_loop entry, for time-to-first-steal
  bool first_steal_recorded_ = false;
  // Span clock: the chain ending here had length span_base_path_ at TSC
  // span_base_tsc_; see span_now(). nested_ticks_ accumulates the inclusive
  // time of jobs this worker ran *inside* the current job (help-first joins
  // executing children inline), so the parent's self time excludes them.
  std::uint64_t span_base_path_ = 0;
  std::uint64_t span_base_tsc_ = 0;
  std::uint64_t nested_ticks_ = 0;
  std::uint64_t provenance_seq_ = 0;
  // Live metrics plane. live_ is this worker's seqlock slot; prov_ its
  // who-robbed-whom tallies. publish_interval_ticks_ == 0 disables.
  obs::Seqlock<LiveWorkerSample>* live_ = nullptr;
  obs::StealProvenance* prov_ = nullptr;
  std::uint64_t last_publish_tsc_ = 0;
  std::uint64_t publish_seq_ = 0;
  std::uint64_t publish_interval_ticks_ = 0;
#endif
  std::uint64_t heartbeat_seq_ = 0;   // published to the watchdog each loop
  YieldingBackoff steal_backoff_{256};  // armed by resilience.steal_backoff
  // Victim-selection state (DESIGN.md §12). ring_distance_ is the next
  // probe distance for kNearestNeighbor (0 = start over at 1);
  // last_victim_ caches the last successfully robbed slot for kLastVictim.
  std::size_t ring_distance_ = 0;
  std::size_t last_victim_ = static_cast<std::size_t>(-1);
  Xoshiro256 rng_;
  JobPool pool_;
};

// Structured fork-join scope. spawn() pushes children onto the calling
// worker's deque; wait() participates in the scheduling loop (pops own
// deque, then steals) until every spawned child has completed. This is the
// standard blocking-join formulation used by work-stealing runtimes; the
// deque traffic it generates is exactly the paper's push_bottom /
// pop_bottom / pop_top pattern.
//
// Exceptions: a child throwing is captured (first one wins) and rethrown
// from wait(). The destructor drains outstanding children without
// rethrowing, so a TaskGroup unwinding through an exception stays safe.
//
// Parking: with resilience.park_after_failed_steals > 0, a waiter whose
// pops and steals keep failing parks on a condition variable instead of
// spinning. The classic lost-wakeup window — the last child completes
// between the waiter's pending check and its sleep — is closed by the
// standard protocol: the waiter registers itself, then re-checks pending_
// under the park mutex before sleeping, while the completer takes (and
// releases) the mutex before notifying; a bounded park_timeout_us backstops
// liveness besides. The mutex, condition variable, and waiter count live in
// the *Scheduler*, not the group: the waiter may destroy the group the
// instant pending_ hits zero, so the completer's decrement must be its last
// access to group memory — everything after (the waiter check, the notify)
// touches only scheduler-owned state, which outlives every job. The
// registration/decrement pair is seq_cst on both sides (store-buffering
// pattern): either the completer sees the registration and notifies, or the
// waiter's re-check sees zero and never sleeps.
class TaskGroup {
 public:
  explicit TaskGroup(Worker& w) : worker_(w) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;
  ~TaskGroup() { drain(); }

  template <typename F>
  inline void spawn(F&& f);

  // Drains until every child completed, then rethrows the first captured
  // child exception, if any (a cancelled child contributes CancelledError).
  inline void wait();

  std::int64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  bool has_exception() const noexcept {
    return exception_state_.load(std::memory_order_acquire) == 2;
  }

 private:
  friend class Worker;
  inline void drain();
  inline void park();
  inline void on_complete() noexcept;  // defined after Scheduler

#if ABP_TRACE_ENABLED
  // Span fold across the join: each completing child CAS-maxes its end
  // path here; the waiter raises its span clock to the max when drain()
  // observes pending_ == 0. A steal moves the child to another worker, so
  // this is the cross-worker edge of the measured-span DAG.
  void fold_child_path(std::uint64_t path) noexcept {
    std::uint64_t cur = max_child_path_.load(std::memory_order_relaxed);
    while (cur < path &&
           !max_child_path_.compare_exchange_weak(cur, path,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_relaxed)) {
    }
  }
#endif

  void capture_exception(std::exception_ptr eptr) noexcept {
    int expected = 0;
    if (exception_state_.compare_exchange_strong(
            expected, 1, std::memory_order_acq_rel)) {
      exception_ = std::move(eptr);
      exception_state_.store(2, std::memory_order_release);
    }
  }

  Worker& worker_;
  std::atomic<std::int64_t> pending_{0};
#if ABP_TRACE_ENABLED
  std::atomic<std::uint64_t> max_child_path_{0};
#endif
  std::atomic<int> exception_state_{0};  // 0 none, 1 storing, 2 stored
  std::exception_ptr exception_;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions opts = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Number of worker *slots* ever activated — the victim set for steals
  // (retired/dead slots stay in it so their deques drain). Equals the
  // configured worker count until membership changes.
  std::size_t num_workers() const noexcept {
    return slot_count_.load(std::memory_order_acquire);
  }
  // Workers currently alive (not retired, not chaos-killed).
  std::size_t live_workers() const noexcept {
    return live_workers_.load(std::memory_order_acquire);
  }
  std::size_t max_workers() const noexcept { return max_workers_; }
  // Bumped on every membership change (add, retire, kill).
  std::uint64_t membership_epoch() const noexcept {
    return membership_epoch_.load(std::memory_order_acquire);
  }
  const SchedulerOptions& options() const noexcept { return opts_; }

  // Runs `f(worker)` as the root job and blocks until it returns; an
  // exception escaping `f` is rethrown here, on the calling thread. Must
  // not be called from inside the pool. `f` should wait on its TaskGroups
  // before returning (structured parallelism). Throws SchedulerStoppedError
  // after shutdown(), AllWorkersLostError if every worker died before the
  // root was claimed.
  template <typename F>
  void run(F&& f) {
    Job root;  // stack-allocated: it never enters a pool
    std::atomic<bool>* done = &done_;
    std::exception_ptr root_exception;
    auto* eptr = &root_exception;
    root.group = nullptr;
    root.pooled = false;
    root.detached = false;  // the root's end path is the measured span
    root.emplace([fn = std::forward<F>(f), done, eptr](Worker& w) mutable {
      try {
        fn(w);
      } catch (...) {
        *eptr = std::current_exception();
      }
      done->store(true, std::memory_order_release);
    });
    try {
      run_root(&root);
    } catch (...) {
      root.destroy();  // the root never ran; tear down its closure
      throw;
    }
    if (root_exception) std::rethrow_exception(root_exception);
  }

  // ---- dynamic membership --------------------------------------------------
  // Spawns a worker into a free slot (a never-used one, or one whose
  // occupant died/retired). If a run is in flight the new worker joins it
  // immediately. Throws SchedulerStoppedError after shutdown(),
  // std::runtime_error when every slot is occupied.
  std::size_t add_worker();
  // Asks the worker in `slot` to exit at its next job boundary (or
  // immediately if it is parked between runs). Its deque remains stealable
  // so any queued jobs complete. Returns false if the slot is not live.
  bool retire_worker(std::size_t slot);

  // ---- cancellation / shutdown ---------------------------------------------
  // Raises the cancellation flag for the current run: jobs not yet started
  // are skipped at their boundary and their groups observe CancelledError
  // at wait(). Reset automatically by the next run().
  void request_cancel(CancelReason reason = CancelReason::kUser) noexcept {
    cancel_.request(reason);
  }
  bool cancel_requested() const noexcept { return cancel_.requested(); }
  CancelReason cancel_reason() const noexcept { return cancel_.reason(); }
  CancelToken cancel_token() const { return cancel_.token(); }

  // Graceful stop: cancels in-flight work, waits up to `deadline` for the
  // runtime to quiesce, and joins the workers if it does. On timeout the
  // report carries a snapshot count of still-queued jobs; workers keep
  // draining them (as cancelled) and the destructor completes the join.
  // After this returns, run()/add_worker() throw SchedulerStoppedError.
  ShutdownReport shutdown(std::chrono::milliseconds deadline);

  // ---- watchdog ------------------------------------------------------------
  // Stalls flagged by the watchdog so far (workers whose heartbeat did not
  // advance for resilience.stall_deadline_ms during a run).
  std::uint64_t stalls_detected() const noexcept {
    return stalls_detected_.load(std::memory_order_acquire);
  }

  WorkerStats total_stats() const;
  const WorkerStats& worker_stats(std::size_t i) const {
    return stats_[i].value;
  }
  void reset_stats();

  // ---- telemetry (src/obs) ----
  // True when the WHEN_TRACE hooks were compiled in (-DABP_TRACE=ON).
  static constexpr bool trace_compiled() noexcept {
    return ABP_TRACE_ENABLED != 0;
  }
  // Chrome-trace JSON of the per-worker event rings ({"traceEvents":[]}
  // when hooks are compiled out). Call only while quiesced.
  std::string chrome_trace_json() const;
  // One-line JSON: aggregated counters plus (when tracing) steal-latency /
  // job-run / time-to-first-steal histogram summaries in nanoseconds.
  std::string stats_json() const;
#if ABP_TRACE_ENABLED
  const obs::TraceRing& worker_trace(std::size_t i) const { return *rings_[i]; }
  // Histograms merged across workers. Call only while quiesced.
  obs::WorkerTelemetry aggregate_telemetry() const;
#endif

  // ---- live metrics plane (DESIGN.md §13) ----
  // Epoch-consistent counters aggregated from the per-worker seqlock
  // slots. Safe to call mid-run from any thread: each slot is read
  // torn-free, and each worker's published counters only grow, so repeated
  // snapshots are monotone and never exceed the post-quiesce totals.
  // All-zero when the trace hooks are compiled out or nothing published yet.
  struct LiveSnapshot {
    WorkerStats stats;               // summed over published samples
    std::uint64_t exec_self_ticks = 0;
    std::uint64_t publishes = 0;     // total publications across workers
    std::uint64_t workers_published = 0;  // slots with >= 1 publication
    std::uint64_t read_retries = 0;  // seqlock retries while snapshotting
  };
  LiveSnapshot live_snapshot() const;
  // The snapshot flattened to named samples — plugs straight into
  // obs::MetricsPump as its sampler.
  std::vector<obs::MetricPoint> live_sample() const;
  // Prometheus text exposition: counters + steal-latency/job-run
  // histograms (in ns). Mid-run it reflects the live slots; without trace
  // hooks it falls back to total_stats() (then call while quiesced).
  std::string prometheus_text() const;
  // Measured work/span of the runtime's causal-span profiler (ticks):
  // t1 = summed per-job self cycles, tinf = longest observed dependency
  // chain (max over runs since reset_stats). Call while quiesced.
  obs::SpanProfile span_profile() const;
  // Steal-provenance tree: who stole how many jobs (and batch items) from
  // whom, plus the locality-domain split. Call while quiesced.
  std::string steal_provenance_json() const;

 private:
  friend class Worker;
  friend class TaskGroup;

  enum class SlotState : std::uint8_t { kEmpty = 0, kLive, kRetiring, kDead };
  static constexpr std::size_t kNoStealHint = static_cast<std::size_t>(-1);

  void run_root(Job* root);
  void worker_main(std::size_t slot, std::uint64_t initial_epoch);
  void work_loop(Worker& w);
  void watchdog_main();
  // (The constructor also calls activate_slot before any thread exists;
  // it takes mu_ anyway so the annotation holds unconditionally.)
  void activate_slot(std::size_t slot, std::uint64_t generation)
      ABP_REQUIRES(mu_);
  void exit_slot(std::size_t slot) ABP_REQUIRES(mu_);
  bool all_live_entered() const ABP_REQUIRES(mu_);
  void join_workers();

  bool done() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  SlotState slot_state(std::size_t slot) const noexcept {
    return static_cast<SlotState>(
        slot_state_[slot].value.load(std::memory_order_relaxed));
  }

  // Called by TaskGroup::on_complete after its final pending_ decrement.
  // Deliberately touches only scheduler state: the decremented group may
  // already be destroyed by its waiter. seq_cst pairs with the waiter's
  // registration in TaskGroup::park (see the parking comment there).
  void notify_parked() noexcept {
    if (parked_waiters_.load(std::memory_order_seq_cst) == 0) return;
    // Lost-wakeup defense: the waiter re-checks its pending count under
    // park_mu_ before sleeping, so passing through the (empty) critical
    // section orders this completion against any in-flight park decision.
    { sync::MutexLock lk(park_mu_); }
    park_cv_.notify_all();
  }

#if ABP_TRACE_ENABLED
  // Called by the worker whose execute() finishes the root job (at most
  // one per run; see the ordering comment on measured_tinf_ticks_).
  void record_root_span(std::uint64_t path) noexcept {
    if (path > measured_tinf_ticks_) measured_tinf_ticks_ = path;
  }
#endif

  SchedulerOptions opts_;
  std::size_t max_workers_ = 0;        // slot capacity; fixed at construction
  bool watchdog_enabled_ = false;      // plain: set once in the constructor
  bool steal_backoff_enabled_ = false;  // plain: set once in the constructor

  // Per-slot state, preallocated to max_workers_ so membership changes
  // never reallocate under concurrent readers. deques_/workers_ slots stay
  // null until first activation and are never freed while the scheduler
  // lives (dead slots remain valid steal victims).
  std::vector<std::unique_ptr<PolyDeque<Job*>>> deques_;
  std::vector<PaddedWorkerStats> stats_;
#if ABP_TRACE_ENABLED
  std::vector<std::unique_ptr<obs::TraceRing>> rings_;
  std::vector<CacheAligned<obs::WorkerTelemetry>> telemetry_;
  // Live metrics plane: one seqlock slot + provenance tally per slot.
  std::vector<std::unique_ptr<obs::Seqlock<LiveWorkerSample>>> live_;
  std::vector<CacheAligned<obs::StealProvenance>> prov_;
  // Longest dependency chain the span profiler observed, folded in by the
  // worker that finishes the root job (max across runs since reset_stats).
  // Plain, not atomic: the writer's mu_ round-trip in worker_main orders
  // the store before run()/reset_stats() readers.
  std::uint64_t measured_tinf_ticks_ = 0;
#endif
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::vector<CacheAligned<std::atomic<std::uint8_t>>> slot_state_;
  std::vector<CacheAligned<std::atomic<std::uint64_t>>> heartbeats_;
  std::vector<std::uint64_t> seen_epoch_ ABP_GUARDED_BY(mu_);

  std::atomic<std::size_t> slot_count_{0};     // slots ever activated
  std::atomic<std::size_t> live_workers_{0};
  std::atomic<std::uint64_t> membership_epoch_{0};
  std::atomic<std::size_t> steal_hint_{kNoStealHint};  // watchdog re-target
  std::atomic<std::uint64_t> stalls_detected_{0};

  CancelSource cancel_;

  // Parking slow path (TaskGroup::park / notify_parked). Scheduler-owned so
  // completers never touch group memory after the group may be destroyed;
  // shared across groups — waiters re-check their own pending count on wake.
  std::atomic<std::uint32_t> parked_waiters_{0};
  sync::Mutex park_mu_;
  sync::CondVar park_cv_;

  std::atomic<Job*> root_job_{nullptr};
  std::atomic<bool> done_{true};

  sync::Mutex mu_;
  sync::CondVar cv_workers_;
  sync::CondVar cv_main_;
  std::uint64_t epoch_ ABP_GUARDED_BY(mu_) = 0;
  // Workers inside work_loop this epoch.
  std::size_t active_in_epoch_ ABP_GUARDED_BY(mu_) = 0;
  // Reseeds respawned workers.
  std::uint64_t membership_generation_ ABP_GUARDED_BY(mu_) = 0;
  // Workers exit at next park; set by dtor/shutdown.
  bool shutdown_ ABP_GUARDED_BY(mu_) = false;
  // run()/add_worker() refused; set by shutdown().
  bool stopped_ ABP_GUARDED_BY(mu_) = false;

  std::thread watchdog_thread_;
  sync::Mutex wd_mu_;
  sync::CondVar wd_cv_;
  bool wd_stop_ ABP_GUARDED_BY(wd_mu_) = false;
};

// ---- inline implementations ------------------------------------------------

inline bool Worker::cancelled() const noexcept {
  return sched_->cancel_requested();
}

#if ABP_TRACE_ENABLED
inline void Worker::publish_live_now(std::uint64_t now) noexcept {
  if (publish_interval_ticks_ == 0 || live_ == nullptr) return;
  last_publish_tsc_ = now;
  LiveWorkerSample s;
  s.publish_tsc = now;
  s.publish_seq = ++publish_seq_;
  s.stats = stats_->value;
  s.tel = telemetry_->value;
  live_->publish(s);
}

inline void Worker::maybe_publish_live(std::uint64_t now) noexcept {
  if (publish_interval_ticks_ == 0 || live_ == nullptr) return;
  if (now - last_publish_tsc_ < publish_interval_ticks_) return;
  publish_live_now(now);
}
#endif

inline void Worker::push(Job* j) {
  // The ABP deque has fixed capacity; if a program spawns without bound,
  // degrade gracefully by running the job inline (serializing it), which
  // preserves correctness.
  if (deque_->size_hint() + 1 >= sched_->opts_.deque_capacity &&
      sched_->opts_.deque == DequePolicy::kAbp) {
    ++stats().overflow_inline_runs;
    execute(j);
    return;
  }
  WHEN_TRACE(const std::size_t depth_hint = deque_->size_hint();)
  if (deque_->push_bottom_ex(j) != deque::PushStatus::kOk) {
    // Growth failed (bad_alloc or a configured capacity bound): the typed
    // status — instead of an exception unwinding the owner with a job in
    // hand — lets us degrade exactly like the fixed-capacity overflow.
    ++stats().alloc_fail_inline_runs;
    execute(j);
    return;
  }
  ++stats().spawns;
  WHEN_TRACE(ring_->record(obs::EventType::kSpawn, depth_hint);)
}

inline Job* Worker::pop_bottom() {
  auto j = deque_->pop_bottom();
  if (j) {
    ++stats().pop_bottom_hits;
    WHEN_TRACE(ring_->record(obs::EventType::kPopBottomHit);)
    return *j;
  }
  WHEN_TRACE(ring_->record(obs::EventType::kPopBottomMiss);)
  return nullptr;
}

inline Job* Worker::try_steal() {
  Scheduler& s = *sched_;
  const std::size_t p = s.num_workers();
  ++stats().steal_attempts;
  WHEN_TRACE(const std::uint64_t t0 = obs::rdtsc();)
  // ---- victim selection (DESIGN.md §12) ----
  // Every strategy falls back to a fresh uniform draw when its preference
  // is unavailable, so the paper's uniform-choice throw analysis still
  // upper bounds the attempt count.
  bool preferred = false;  // the draw came from a non-uniform preference
  std::size_t victim = 0;
  switch (s.opts_.victim_policy) {
    case VictimPolicy::kNearestNeighbor:
      // Ring probing: distance 1, 2, ... from this worker, one step per
      // failed attempt, snapping back to distance 1 after a success.
      // Near victims share cache/NUMA domains with the thief, and a
      // deterministic sweep visits every victim within P-1 attempts.
      if (p > 1) {
        if (ring_distance_ == 0 || ring_distance_ >= p) ring_distance_ = 1;
        victim = (id_ + ring_distance_) % p;
        ++ring_distance_;
        preferred = true;
      } else {
        victim = static_cast<std::size_t>(rng_.below(p));
      }
      break;
    case VictimPolicy::kLastVictim:
      // A victim with a deep deque stays profitable across several steals;
      // re-try it until it comes up empty (cleared in the kEmpty arm).
      if (last_victim_ != static_cast<std::size_t>(-1) && last_victim_ < p &&
          last_victim_ != id_) {
        victim = last_victim_;
        preferred = true;
      } else {
        victim = static_cast<std::size_t>(rng_.below(p));
      }
      break;
    case VictimPolicy::kUniform:
    case VictimPolicy::kHintAware:
      victim = static_cast<std::size_t>(rng_.below(p));
      break;
  }
  bool hinted = false;
  if (s.watchdog_enabled_ ||
      s.opts_.victim_policy == VictimPolicy::kHintAware) {
    // Prefer the deque the watchdog flagged as stalled, so a descheduled
    // worker's jobs drain while it is gone.
    const std::size_t hint = s.steal_hint_.load(std::memory_order_acquire);
    if (hint != Scheduler::kNoStealHint && hint < p && hint != id_) {
      victim = hint;
      hinted = true;
    }
  }
  WHEN_TRACE(ring_->record_at(t0, obs::EventType::kStealAttempt, victim);)
  if (victim == id_) {
    // Own deque is empty (we are a thief); counts as an empty victim.
    ++stats().steal_empty_victim;
    WHEN_TRACE(ring_->record(obs::EventType::kStealAbortEmpty, victim);)
    return nullptr;
  }
  CHAOS_POINT("sched.steal.pre_poptop");
  // ---- the steal itself: single popTop, or a steal-half batch ----
  deque::PopTopStatus status;
  Job* got = nullptr;
  WHEN_TRACE(std::size_t stolen_items = 1;)  // per claim; batches override
  if (s.opts_.steal_policy == StealPolicy::kStealHalf) {
    std::size_t limit = s.opts_.steal_batch_limit;
    if (limit == 0) limit = 1;
    if (limit > deque::kMaxStealBatch) limit = deque::kMaxStealBatch;
    auto br = s.deques_[victim]->pop_top_batch(limit);
    status = br.status;
    if (br.status == deque::PopTopStatus::kSuccess) {
      // Run the DEEPEST job of the stolen prefix and push the shallower
      // surplus in its original top-to-bottom order: the thief then looks
      // exactly like a Lemma 3 process (assigned node deepest, deque
      // depths strictly decreasing bottom to top), so the structural
      // top-heaviness argument survives batching (DESIGN.md §12). A
      // failed surplus push degrades exactly like Worker::push: run the
      // job inline, never drop it.
      got = br.items[br.count - 1];
      WHEN_TRACE(stolen_items = br.count;)
      ++stats().batch_steals;
      stats().batch_stolen_items += br.count;
      WHEN_TRACE(ring_->record(obs::EventType::kStealBatch, br.count);)
      for (std::size_t i = 0; i + 1 < br.count; ++i) {
        if (deque_->push_bottom_ex(br.items[i]) != deque::PushStatus::kOk) {
          ++stats().batch_surplus_inline_runs;
          execute(br.items[i]);
        }
      }
    }
  } else {
    auto r = s.deques_[victim]->pop_top_ex();
    status = r.status;
    if (r.status == deque::PopTopStatus::kSuccess) got = *r.item;
  }
  switch (status) {
    case deque::PopTopStatus::kSuccess: {
      if (s.steal_backoff_enabled_) steal_backoff_.reset();
      ++stats().steals;
      if (preferred || hinted) ++stats().preferred_victim_hits;
      if (!obs::same_locality_domain(id_, victim,
                                     s.opts_.locality_domain_size))
        ++stats().cross_domain_steals;
      {
        // Ring distance |thief - victim| (shorter way around): the
        // locality metric the victim policies optimize.
        const std::size_t gap = victim > id_ ? victim - id_ : id_ - victim;
        const std::size_t dist = gap < p - gap ? gap : p - gap;
        stats().victim_distance_sum += dist;
        WHEN_TRACE(ring_->record(obs::EventType::kVictimDistance, dist);)
      }
      ring_distance_ = 0;      // nearest-neighbor: restart at distance 1
      last_victim_ = victim;   // last-victim: this one proved profitable
      WHEN_TRACE({
        const std::uint64_t latency = obs::rdtsc() - t0;
        ring_->record(obs::EventType::kStealSuccess, latency);
        // Provenance edge of the steal tree: which task moved, and from
        // whom (the victim tally feeds steal_provenance_json).
        ring_->record(obs::EventType::kTaskStolen, got->provenance);
        prov_->record(victim, stolen_items);
        telemetry_->value.steal_latency.record(latency);
        if (!first_steal_recorded_) {
          first_steal_recorded_ = true;
          telemetry_->value.time_to_first_steal.record(t0 - loop_start_tsc_);
        }
      })
      return got;
    }
    case deque::PopTopStatus::kLostRace:
      ++stats().steal_cas_failures;
      WHEN_TRACE(ring_->record(obs::EventType::kStealAbortCas, victim);)
      // §3's yield discipline applied to CAS contention: persistent loss
      // means some other process needs the processor more than we do.
      if (s.steal_backoff_enabled_ && steal_backoff_.step())
        ++stats().backoff_yields;
      return nullptr;
    case deque::PopTopStatus::kEmpty:
      break;
  }
  if (victim == last_victim_) last_victim_ = static_cast<std::size_t>(-1);
  if (hinted) {
    // The stalled worker's deque is drained; retire the hint (unless the
    // watchdog has already re-pointed it at a different slot).
    std::size_t expected = victim;
    s.steal_hint_.compare_exchange_strong(expected, Scheduler::kNoStealHint,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed);
  }
  if (s.steal_backoff_enabled_) steal_backoff_.reset();
  ++stats().steal_empty_victim;
  WHEN_TRACE(ring_->record(obs::EventType::kStealAbortEmpty, victim);)
  return nullptr;
}

inline void Worker::execute(Job* j) {
  TaskGroup* group = j->group;
  const bool pooled = j->pooled;
  if (group != nullptr && sched_->cancel_requested()) {
    // Cancellation is quantized at job boundaries: this job never starts,
    // its closure is destroyed, and its group observes CancelledError so
    // wait() reports a typed error instead of silently dropping work. The
    // root job (group == nullptr) always runs — it owns the done flag.
    ++stats().cancelled_jobs;
    WHEN_TRACE(ring_->record(obs::EventType::kJobCancelled);)
    j->destroy();
    if (pooled) pool_.free(j);
    group->capture_exception(
        std::make_exception_ptr(CancelledError(sched_->cancel_reason())));
    CHAOS_POINT("sched.exec.pre_complete");
    group->on_complete();
    return;
  }
  ++stats().jobs_executed;
  // Span bookkeeping (DESIGN.md §13). On entry the worker's span clock
  // jumps to the job's spawn-time path (this chain continues the spawner's
  // prefix, not whatever this worker ran last); the caller's clock and
  // nested-time tally are saved so a nested execute — a waiter helping at
  // a join — is carved out of the caller's self time and restored on exit.
  WHEN_TRACE(const std::uint64_t t0 = obs::rdtsc();
             const std::uint64_t caller_path = span_now(t0);
             const std::uint64_t saved_nested = nested_ticks_;
             nested_ticks_ = 0;
             span_base_path_ = j->span_path;
             span_base_tsc_ = t0;
             ring_->record_at(t0, obs::EventType::kJobBegin, j->provenance);)
  j->run(*this);
  WHEN_TRACE({
    const std::uint64_t t1 = obs::rdtsc();
    const std::uint64_t dt = t1 - t0;
    // End-of-chain path for this job: includes any child chains folded in
    // at joins the job waited on. Folded into the group *before*
    // on_complete below — after the final decrement the waiter may destroy
    // the group.
    const std::uint64_t end_path = span_now(t1);
    ring_->record(obs::EventType::kJobEnd, dt);
    telemetry_->value.job_run.record(dt);
    const std::uint64_t nested = nested_ticks_ < dt ? nested_ticks_ : dt;
    telemetry_->value.exec_self_ticks += dt - nested;
    nested_ticks_ = saved_nested + dt;
    span_base_path_ = caller_path;
    span_base_tsc_ = t1;
    if (group != nullptr) {
      group->fold_child_path(end_path);
    } else if (!j->detached) {
      // Only the true root folds into measured T-infinity: detached jobs
      // also have group == nullptr but finish concurrently with each
      // other, and record_root_span's plain store assumes one writer.
      sched_->record_root_span(end_path);
    }
    maybe_publish_live(t1);
  })
  if (pooled) pool_.free(j);
  if (group != nullptr) {
    // The lost-wakeup window: the job ran but its completion is not yet
    // visible to a parking waiter. Chaos stalls here to prove the parking
    // protocol tolerates an arbitrarily slow completer.
    CHAOS_POINT("sched.exec.pre_complete");
    group->on_complete();
  }
}

inline void Worker::yield_between_steals() {
  CHAOS_POINT("sched.loop.pre_yield");
  // A starved thief still keeps its live slot fresh: without this an idle
  // worker's last publication would age out of the live snapshot.
  WHEN_TRACE(maybe_publish_live(obs::rdtsc());)
  switch (sched_->opts_.yield) {
    case YieldPolicy::kNone:
      break;
    case YieldPolicy::kYield:
      ++stats().yields;
      WHEN_TRACE(ring_->record(obs::EventType::kYield);)
      std::this_thread::yield();
      break;
    case YieldPolicy::kSleep:
      ++stats().yields;
      WHEN_TRACE(ring_->record(obs::EventType::kYield);)
      std::this_thread::sleep_for(
          std::chrono::microseconds(sched_->opts_.sleep_us));
      break;
  }
}

template <typename F>
inline void Worker::spawn_detached(F&& f) {
  Job* j = pool_.alloc();
  j->group = nullptr;
  j->pooled = true;
  j->detached = true;
  // Same spawn-time stamping as TaskGroup::spawn: detached chains still
  // appear in the steal-provenance tree, they just don't fold into the
  // root's span at completion.
  WHEN_TRACE(const std::uint64_t now = obs::rdtsc();
             j->span_path = span_now(now);
             j->provenance = alloc_provenance();)
  j->emplace(std::forward<F>(f));
  push(j);
}

template <typename F>
inline void TaskGroup::spawn(F&& f) {
  Job* j = worker_.pool().alloc();
  j->group = this;
  j->pooled = true;
  j->detached = false;  // pool recycling: the slot may have been detached
  // Stamp the child with the spawner's current path (the chain it extends)
  // and a globally unique id for the steal-provenance events.
  WHEN_TRACE(const std::uint64_t now = obs::rdtsc();
             j->span_path = worker_.span_now(now);
             j->provenance = worker_.alloc_provenance();)
  j->emplace([this, fn = std::forward<F>(f)](Worker& w) mutable {
    try {
      fn(w);
    } catch (...) {
      capture_exception(std::current_exception());
    }
  });
  pending_.fetch_add(1, std::memory_order_acq_rel);
  worker_.push(j);
}

inline void TaskGroup::drain() {
  Worker& w = worker_;
  // The waiter's chain is blocked from here until the last child
  // completes: freeze its span clock now, and resume it at exit from the
  // max of its own path and the folded child end paths. Time spent
  // spinning (or helping — those jobs carry their own chains) below is
  // deliberately not chain time.
  WHEN_TRACE(const std::uint64_t join_t0 = obs::rdtsc();
             const std::uint64_t path_at_join = w.span_now(join_t0);)
  const std::uint32_t park_after =
      w.scheduler().options().resilience.park_after_failed_steals;
  std::uint32_t consecutive_failures = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (Job* j = w.pop_bottom()) {
      w.execute(j);
      consecutive_failures = 0;
      continue;
    }
    // Own deque empty: help by stealing, with the configured yield first
    // (Figure 3, lines 14-17).
    w.yield_between_steals();
    if (Job* j = w.try_steal()) {
      w.execute(j);
      consecutive_failures = 0;
      continue;
    }
    if (park_after != 0 && ++consecutive_failures >= park_after) {
      park();
      consecutive_failures = 0;
    }
  }
  WHEN_TRACE({
    const std::uint64_t t = obs::rdtsc();
    w.set_span(path_at_join, t);
    w.raise_span(max_child_path_.load(std::memory_order_acquire), t);
  })
}

inline void TaskGroup::on_complete() noexcept {
  // Grab the scheduler *before* the decrement: the instant pending_ hits
  // zero the waiter may return from drain() and destroy this group, so the
  // fetch_sub below must be the completer's last access to group memory.
  // seq_cst (not acq_rel) pairs with the waiter's seq_cst registration in
  // park(): either we see the registered waiter and notify, or the waiter's
  // re-check sees our zero and never sleeps (store-buffering guarantee).
  Scheduler* s = &worker_.scheduler();
  const std::int64_t left =
      pending_.fetch_sub(1, std::memory_order_seq_cst) - 1;
  if (left == 0) s->notify_parked();
}

inline void TaskGroup::park() {
  Worker& w = worker_;
  Scheduler& s = w.scheduler();
  s.parked_waiters_.fetch_add(1, std::memory_order_seq_cst);
  // The lost-wakeup window under test: the last child may complete right
  // here, between the drain loop's pending check and the sleep below. The
  // re-check of pending_ under the scheduler's park mutex (paired with the
  // completer's empty critical section in notify_parked) closes it.
  CHAOS_POINT("taskgroup.wait.pre_park");
  {
    sync::MutexLock lk(s.park_mu_);
    if (pending_.load(std::memory_order_seq_cst) != 0) {
      ++w.stats().parks;
      WHEN_TRACE(w.trace().record(obs::EventType::kPark);)
      s.park_cv_.wait_for(
          s.park_mu_, std::chrono::microseconds(
                          s.options().resilience.park_timeout_us));
    }
  }
  s.parked_waiters_.fetch_sub(1, std::memory_order_release);
}

inline void TaskGroup::wait() {
  drain();
  if (exception_state_.load(std::memory_order_acquire) == 2) {
    // Reset so a reused group can capture again; rethrow the first.
    std::exception_ptr eptr = exception_;
    exception_ = nullptr;
    exception_state_.store(0, std::memory_order_release);
    std::rethrow_exception(eptr);
  }
}

}  // namespace abp::runtime
