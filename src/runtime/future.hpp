#pragma once

// Single-value futures on top of TaskGroup: spawn a computation, keep
// working, collect the result (or the exception) later. Non-movable —
// a Future pins the fork-join structure to the scope that created it,
// like TaskGroup itself (structured concurrency).
//
// Blocking semantics: get() inherits TaskGroup's helping wait — it pops
// and steals jobs until the spawned computation completes, and (when
// ResilienceOptions::park_after_failed_steals is set) parks on the
// scheduler's condition variable after repeated failures instead of
// spinning. The
// parking handshake is lost-wakeup safe: the completing job might finish
// in the window between the waiter's readiness check and its sleep, so the
// waiter re-checks under the park mutex and the completer passes through
// that mutex before notifying (see TaskGroup::park / on_complete). A
// computation that threw has its exception rethrown from get(); a
// computation skipped by cancellation surfaces CancelledError instead.

#include <optional>
#include <type_traits>
#include <utility>

#include "runtime/scheduler.hpp"

namespace abp::runtime {

template <typename T>
class Future {
 public:
  // Spawns fn(worker) immediately; the result is available after get().
  template <typename F>
  Future(Worker& w, F&& fn) : group_(w) {
    static_assert(std::is_invocable_r_v<T, F, Worker&>,
                  "future function must return T given a Worker&");
    group_.spawn([this, f = std::forward<F>(fn)](Worker& w2) mutable {
      value_.emplace(f(w2));
    });
  }

  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  // Blocks (helping: pops/steals) until the value is ready; rethrows the
  // computation's exception if it threw. Callable once or repeatedly.
  T& get() {
    group_.wait();  // rethrows on failure
    ABP_ASSERT(value_.has_value());
    return *value_;
  }

  bool ready() const noexcept { return group_.pending() == 0; }

 private:
  TaskGroup group_;
  std::optional<T> value_;
};

template <>
class Future<void> {
 public:
  template <typename F>
  Future(Worker& w, F&& fn) : group_(w) {
    group_.spawn([f = std::forward<F>(fn)](Worker& w2) mutable { f(w2); });
  }

  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  void get() { group_.wait(); }
  bool ready() const noexcept { return group_.pending() == 0; }

 private:
  TaskGroup group_;
};

}  // namespace abp::runtime
