#pragma once

// Jobs: the runtime's unit of scheduled work.
//
// A Job is a fixed-size, cache-line-aligned record holding a trampoline
// function pointer and inline closure storage (no heap allocation, no
// std::function on the hot path). Jobs are allocated from per-worker pools
// and recycled by whichever worker finishes them.

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "support/align.hpp"
#include "support/assert.hpp"

namespace abp::runtime {

class Worker;
class TaskGroup;

struct alignas(kCacheLineSize) Job {
  // One trampoline serves both paths so the record stays one cache line:
  // destroy-only (cancelled) passes worker == nullptr and the closure is
  // torn down without running.
  using Fn = void (*)(Job*, Worker*);

  // The span-profiler fields below (ABP_TRACE only) take 8 bytes out of
  // the inline closure budget so the record stays exactly one cache line
  // either way.
#if ABP_TRACE_ENABLED
  static constexpr std::size_t kInlineBytes = 80;
#else
  static constexpr std::size_t kInlineBytes = 88;
#endif

  Fn fn = nullptr;
  TaskGroup* group = nullptr;  // notified when the job completes
  Job* next_free = nullptr;    // pool freelist link
#if ABP_TRACE_ENABLED
  // Causal-span provenance (DESIGN.md §13), stamped at spawn time:
  // span_path is the spawner's path length (in ticks) at the spawn, the
  // prefix this job's chain extends; provenance is the globally unique
  // (worker, seq) id the steal events reference.
  std::uint64_t span_path = 0;
  std::uint64_t provenance = 0;
#endif
  bool pooled = false;         // false for stack-allocated root jobs
  // Detached jobs (src/runtime/tenant, DESIGN.md §16) have no TaskGroup
  // and are not the root: they always run (cancellation skipping keys on
  // group), never notify on_complete, and the span profiler must not fold
  // their end path into the root's measured T-infinity. Allocation sites
  // must set it explicitly either way — pool recycling preserves the flag.
  bool detached = false;
  alignas(std::max_align_t) unsigned char storage[kInlineBytes];

  template <typename F>
  void emplace(F&& f) {
    using Decayed = std::decay_t<F>;
    static_assert(sizeof(Decayed) <= kInlineBytes,
                  "closure too large for inline job storage; capture less "
                  "or box the state");
    static_assert(alignof(Decayed) <= alignof(std::max_align_t));
    ::new (static_cast<void*>(storage)) Decayed(std::forward<F>(f));
    fn = [](Job* self, Worker* w) {
      auto* callable = std::launder(reinterpret_cast<Decayed*>(self->storage));
      if (w != nullptr) (*callable)(*w);
      callable->~Decayed();
    };
  }

  void run(Worker& w) { fn(this, &w); }

  // Tears down the closure without running it (cancellation path).
  void destroy() { fn(this, nullptr); }
};

static_assert(std::is_trivially_copyable_v<Job*>);
// The span fields must not grow the record: same footprint traced or not.
static_assert(sizeof(Job) == 128);

// Per-worker job allocator: arena blocks plus a freelist. The freelist is
// touched only by the owning worker, but it may receive jobs that were
// *allocated* by other workers (the finisher recycles); that is safe
// because arena blocks live until every pool is destroyed, which the
// scheduler guarantees by joining all workers first.
class JobPool {
 public:
  JobPool() = default;
  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  Job* alloc() {
    if (free_ != nullptr) {
      Job* j = free_;
      free_ = j->next_free;
      return j;
    }
    if (next_in_block_ == kBlockSize) {
      blocks_.push_back(std::make_unique<Job[]>(kBlockSize));
      next_in_block_ = 0;
    }
    return &blocks_.back()[next_in_block_++];
  }

  void free(Job* j) {
    j->next_free = free_;
    free_ = j;
  }

 private:
  static constexpr std::size_t kBlockSize = 256;
  std::vector<std::unique_ptr<Job[]>> blocks_;
  std::size_t next_in_block_ = kBlockSize;
  Job* free_ = nullptr;
};

}  // namespace abp::runtime
