#pragma once
// atomics-lint: allow(simple stop flag for the load-generator threads)

// Background load generator: spins CPU-hog threads so that the work
// stealer's processes receive fewer processors than P — the
// multiprogrammed regime (PA < P) the paper targets. A duty cycle below
// 1.0 makes the hogs alternate spin/sleep, modulating how much of the
// machine they consume.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace abp::runtime {

class BackgroundLoad {
 public:
  BackgroundLoad() = default;
  BackgroundLoad(const BackgroundLoad&) = delete;
  BackgroundLoad& operator=(const BackgroundLoad&) = delete;
  ~BackgroundLoad() { stop(); }

  void start(std::size_t num_threads, double duty_cycle = 1.0) {
    ABP_ASSERT(duty_cycle > 0.0 && duty_cycle <= 1.0);
    stop();
    stop_.store(false, std::memory_order_release);
    threads_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, duty_cycle] {
        using namespace std::chrono;
        const auto period = milliseconds(10);
        const auto spin_time =
            duration_cast<steady_clock::duration>(period * duty_cycle);
        while (!stop_.load(std::memory_order_acquire)) {
          const auto start = steady_clock::now();
          while (steady_clock::now() - start < spin_time &&
                 !stop_.load(std::memory_order_acquire)) {
          }
          if (duty_cycle < 1.0) std::this_thread::sleep_for(period - spin_time);
        }
      });
    }
  }

  void stop() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
    threads_.clear();
  }

  std::size_t active() const noexcept { return threads_.size(); }

 private:
  std::atomic<bool> stop_{true};
  std::vector<std::thread> threads_;
};

}  // namespace abp::runtime
