#pragma once

// Structured parallel algorithms built on the TaskGroup fork-join API.
// These generate the recursive divide-and-conquer dags (work T1 = O(n),
// critical path Tinf = O(log n + grain)) that the paper's speedup analysis
// presumes: parallelism is controlled by `grain`.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/scheduler.hpp"

namespace abp::runtime {

// Runs f and g potentially in parallel (g is spawned, f runs inline), and
// waits for both.
template <typename F, typename G>
void parallel_invoke(Worker& w, F&& f, G&& g) {
  TaskGroup tg(w);
  tg.spawn([g = std::forward<G>(g)](Worker& wg) mutable { g(wg); });
  f(w);
  tg.wait();
}

namespace detail {

template <typename Body>
void parallel_for_rec(Worker& w, std::size_t begin, std::size_t end,
                      std::size_t grain, const Body& body) {
  if (end - begin <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  TaskGroup tg(w);
  tg.spawn([mid, end, grain, &body](Worker& wg) {
    parallel_for_rec(wg, mid, end, grain, body);
  });
  parallel_for_rec(w, begin, mid, grain, body);
  tg.wait();
}

template <typename T, typename Map, typename Combine>
T parallel_reduce_rec(Worker& w, std::size_t begin, std::size_t end,
                      std::size_t grain, T identity, const Map& map,
                      const Combine& combine) {
  if (end - begin <= grain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  T right = identity;
  TaskGroup tg(w);
  tg.spawn([&, mid, end, grain](Worker& wg) {
    right = parallel_reduce_rec(wg, mid, end, grain, identity, map, combine);
  });
  T left = parallel_reduce_rec(w, begin, mid, grain, identity, map, combine);
  tg.wait();
  return combine(left, right);
}

}  // namespace detail

// Applies body(i) for i in [begin, end); ranges of at most `grain` indices
// run sequentially.
template <typename Body>
void parallel_for(Worker& w, std::size_t begin, std::size_t end,
                  std::size_t grain, const Body& body) {
  ABP_ASSERT(grain >= 1);
  if (begin >= end) return;
  detail::parallel_for_rec(w, begin, end, grain, body);
}

// Reduction of map(i) over [begin, end) with an associative combine.
template <typename T, typename Map, typename Combine>
T parallel_reduce(Worker& w, std::size_t begin, std::size_t end,
                  std::size_t grain, T identity, const Map& map,
                  const Combine& combine) {
  ABP_ASSERT(grain >= 1);
  if (begin >= end) return identity;
  return detail::parallel_reduce_rec(w, begin, end, grain, identity, map,
                                     combine);
}

// out[i] = fn(in[i]) for i in [0, n).
template <typename In, typename Out, typename Fn>
void parallel_transform(Worker& w, const In* in, Out* out, std::size_t n,
                        std::size_t grain, const Fn& fn) {
  parallel_for(w, 0, n, grain, [&](std::size_t i) { out[i] = fn(in[i]); });
}

// Inclusive prefix scan of `data` in place under an associative combine,
// via the classic two-pass block algorithm: (1) reduce each block in
// parallel, (2) serial prefix over the per-block sums, (3) rescan each
// block in parallel with its offset. Work O(n), critical path
// O(n/num_blocks + num_blocks).
template <typename T, typename Combine>
void parallel_inclusive_scan(Worker& w, T* data, std::size_t n,
                             std::size_t grain, const Combine& combine) {
  ABP_ASSERT(grain >= 1);
  if (n <= grain) {
    for (std::size_t i = 1; i < n; ++i)
      data[i] = combine(data[i - 1], data[i]);
    return;
  }
  const std::size_t blocks = (n + grain - 1) / grain;
  std::vector<T> block_sum(blocks);
  parallel_for(w, 0, blocks, 1, [&](std::size_t b) {
    const std::size_t lo = b * grain;
    const std::size_t hi = std::min(lo + grain, n);
    T acc = data[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) acc = combine(acc, data[i]);
    block_sum[b] = acc;
  });
  for (std::size_t b = 1; b < blocks; ++b)
    block_sum[b] = combine(block_sum[b - 1], block_sum[b]);
  parallel_for(w, 0, blocks, 1, [&](std::size_t b) {
    const std::size_t lo = b * grain;
    const std::size_t hi = std::min(lo + grain, n);
    T acc = b == 0 ? data[lo] : combine(block_sum[b - 1], data[lo]);
    data[lo] = acc;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      acc = combine(acc, data[i]);
      data[i] = acc;
    }
  });
}

namespace detail {

template <typename T, typename Less>
void merge_into(const T* a, std::size_t na, const T* b, std::size_t nb,
                T* out, const Less& less) {
  std::size_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) out[k++] = less(b[j], a[i]) ? b[j++] : a[i++];
  while (i < na) out[k++] = a[i++];
  while (j < nb) out[k++] = b[j++];
}

template <typename T, typename Less>
void parallel_msort(Worker& w, T* data, T* scratch, std::size_t n,
                    std::size_t grain, const Less& less) {
  if (n <= grain) {
    std::sort(data, data + n, less);
    return;
  }
  const std::size_t mid = n / 2;
  TaskGroup tg(w);
  tg.spawn([=, &less](Worker& w2) {
    parallel_msort(w2, data + mid, scratch + mid, n - mid, grain, less);
  });
  parallel_msort(w, data, scratch, mid, grain, less);
  tg.wait();
  merge_into(data, mid, data + mid, n - mid, scratch, less);
  std::copy(scratch, scratch + n, data);
}

}  // namespace detail

// Stable-ish parallel merge sort (recursive halves in parallel, serial
// merge). Allocates one scratch buffer of n elements.
template <typename T, typename Less = std::less<T>>
void parallel_sort(Worker& w, T* data, std::size_t n, std::size_t grain,
                   const Less& less = Less{}) {
  ABP_ASSERT(grain >= 1);
  if (n <= 1) return;
  std::vector<T> scratch(n);
  detail::parallel_msort(w, data, scratch.data(), n, grain, less);
}

}  // namespace abp::runtime
