#pragma once

// Cooperative cancellation, shared by the real runtime (scheduler,
// dag_engine) and the round-based simulator (sched::run_work_stealer).
//
// The paper's kernel may deny processors forever, but our own callers also
// need to *stop* a computation: a deadline passed, a watchdog fired, a
// shutdown began. Cancellation here is cooperative and quantized at job
// boundaries — a request never interrupts a running job; executors observe
// the flag before starting the next unit of work and convert the remainder
// of the computation into typed CancelledError results. This keeps the
// exactly-once story intact: every job either ran or is reported cancelled,
// never silently dropped.
//
// CancelSource owns the flag; CancelToken is a cheap copyable observer. A
// default-constructed token is "never cancelled" and costs one pointer test
// to poll, so APIs can take a token unconditionally.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace abp {

enum class CancelReason : std::uint8_t {
  kNone = 0,
  kUser,      // an explicit request_cancel() / source.request()
  kDeadline,  // a deadline or timeout elapsed (e.g. Scheduler::shutdown)
  kWatchdog,  // stall-recovery machinery gave up on the computation
  kOverload,  // load-shedder evicted a queued request (runtime/tenant)
};

constexpr const char* to_string(CancelReason r) noexcept {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kWatchdog: return "watchdog";
    case CancelReason::kOverload: return "overload";
  }
  return "?";
}

// The typed error surfaced at wait()/get()/run() when a computation was
// cancelled instead of completing.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(CancelReason reason)
      : std::runtime_error(std::string("computation cancelled (") +
                           to_string(reason) + ")"),
        reason_(reason) {}
  CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

// Shared state between a source and its tokens. The first request wins;
// the reason is immutable once set.
class CancelState {
 public:
  bool requested() const noexcept {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<std::uint8_t>(CancelReason::kNone);
  }

  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  // Returns true if this call transitioned the state (first request).
  bool request(CancelReason r) noexcept {
    std::uint8_t expected = static_cast<std::uint8_t>(CancelReason::kNone);
    return reason_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(r), std::memory_order_acq_rel,
        std::memory_order_relaxed);
  }

  // Re-arms the state for a new scope (e.g. the scheduler's next run()).
  // Callers must quiesce executors first; this is not a concurrent undo.
  void reset() noexcept {
    reason_.store(static_cast<std::uint8_t>(CancelReason::kNone),
                  std::memory_order_release);
  }

 private:
  std::atomic<std::uint8_t> reason_{
      static_cast<std::uint8_t>(CancelReason::kNone)};
};

// Copyable observer handle. Default-constructed = never cancelled.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(std::shared_ptr<const CancelState> state)
      : state_(std::move(state)) {}

  bool cancellable() const noexcept { return state_ != nullptr; }

  bool cancelled() const noexcept {
    return state_ != nullptr && state_->requested();
  }

  CancelReason reason() const noexcept {
    return state_ != nullptr ? state_->reason() : CancelReason::kNone;
  }

  void throw_if_cancelled() const {
    if (cancelled()) throw CancelledError(state_->reason());
  }

 private:
  std::shared_ptr<const CancelState> state_;
};

// Owner handle: create, hand out tokens, request.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<CancelState>()) {}

  CancelToken token() const { return CancelToken(state_); }

  bool request(CancelReason r = CancelReason::kUser) noexcept {
    return state_->request(r);
  }

  bool requested() const noexcept { return state_->requested(); }
  CancelReason reason() const noexcept { return state_->reason(); }
  void reset() noexcept { state_->reset(); }

 private:
  std::shared_ptr<CancelState> state_;
};

}  // namespace abp
