#pragma once

// Statistics helpers for the experiment harnesses: online moments (Welford),
// percentiles, and the small least-squares fits used to recover the paper's
// "constant hidden inside the big-Oh" (§6: empirically ~1).

#include <cstddef>
#include <vector>

namespace abp {

// Online mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;   // sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }

  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample (p in [0,100]); uses linear interpolation between
// order statistics. Copies and sorts internally.
double percentile(std::vector<double> sample, double p);

// Least-squares fit of y ~ a*x (single regressor through the origin).
double fit_through_origin(const std::vector<double>& x,
                          const std::vector<double>& y);

// Least-squares fit of y ~ a*x1 + b*x2 (no intercept). This is exactly the
// regression used in experiment E9: T ~ c1*(T1/PA) + cinf*(Tinf*P/PA).
struct TwoVarFit {
  double a = 0.0;
  double b = 0.0;
  double r2 = 0.0;  // coefficient of determination vs. zero model
};
TwoVarFit fit_two_regressors(const std::vector<double>& x1,
                             const std::vector<double>& x2,
                             const std::vector<double>& y);

}  // namespace abp
