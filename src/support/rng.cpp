#include "support/rng.hpp"

#include "support/assert.hpp"

namespace abp {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  ABP_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::size_t> Xoshiro256::sample_without_replacement(std::size_t n,
                                                                std::size_t k) {
  ABP_ASSERT(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
  // process counts (P <= a few hundred) we deal with.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace abp
