#pragma once

// Deterministic pseudo-random number generation.
//
// The work stealer picks victims uniformly at random (paper §3.1), and all of
// our experiments must be reproducible, so we use a small, fast, seedable
// generator rather than std::random_device. xoshiro256** is the standard
// choice for this kind of simulation work; splitmix64 seeds it.

#include <array>
#include <cstdint>
#include <vector>

namespace abp {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x6a09e667f3bcc909ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi].
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace abp
