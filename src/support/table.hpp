#pragma once

// ASCII/CSV table writer for the benchmark harnesses. Every experiment in
// EXPERIMENTS.md prints its rows through this so the output format is
// uniform: a titled, column-aligned table, optionally mirrored to CSV.

#include <cstdio>
#include <string>
#include <vector>

namespace abp {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  // Row cells; call once per row with exactly columns().size() cells.
  void add_row(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  const std::string& title() const noexcept { return title_; }
  std::size_t rows() const noexcept { return rows_.size(); }

  // Render the table, column-aligned, to `out` (default stdout).
  void print(std::FILE* out = stdout) const;

  // Render as CSV (header + rows).
  std::string to_csv() const;

  // Render as a one-line JSON object {"title","columns","rows"}; cells are
  // kept as strings (the formatted values the human table shows).
  std::string to_json() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace abp
