#pragma once

// Exponential backoff used by the real runtime's steal loop between failed
// steal attempts (in addition to the yield discipline the paper analyzes).

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace abp {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : max_spins_(max_spins) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < max_spins_) spins_ *= 2;
  }

  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t max_spins_;
};

// Bounded exponential backoff with yield escalation — the §3 yield
// discipline applied to steal-CAS contention. While under the spin bound
// the caller keeps its processor (contention is probably transient: another
// thief winning a race); once the bound is reached every further step
// *yields*, on the paper's reasoning that persistent CAS failure means some
// other process needs the processor more than this spinning thief does
// (e.g. a preempted victim owner). The escalation is sticky until reset(),
// so a thief that has proven the deque contended stops burning cycles.
class YieldingBackoff {
 public:
  explicit YieldingBackoff(std::uint32_t max_spins = 256) noexcept
      : max_spins_(max_spins) {}

  // One failure step. Returns true when the step escalated to a yield
  // (callers may count these separately from their policy yields).
  bool step() noexcept {
    if (spins_ <= max_spins_) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
      return false;
    }
    std::this_thread::yield();
    return true;
  }

  bool saturated() const noexcept { return spins_ > max_spins_; }

  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t max_spins_;
};

}  // namespace abp
