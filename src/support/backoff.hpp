#pragma once

// Exponential backoff used by the real runtime's steal loop between failed
// steal attempts (in addition to the yield discipline the paper analyzes).

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace abp {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

class Backoff {
 public:
  explicit Backoff(std::uint32_t max_spins = 1024) noexcept
      : max_spins_(max_spins) {}

  void pause() noexcept {
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < max_spins_) spins_ *= 2;
  }

  void reset() noexcept { spins_ = 1; }

 private:
  std::uint32_t spins_ = 1;
  std::uint32_t max_spins_;
};

}  // namespace abp
