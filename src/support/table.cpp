#include "support/table.hpp"

#include <algorithm>
#include <cstdarg>

#include "support/assert.hpp"

namespace abp {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  ABP_ASSERT(!columns_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ABP_ASSERT_MSG(cells.size() == columns_.size(),
                 "row width must match column count");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 3;

  std::fprintf(out, "\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    std::fprintf(out, "%-*s   ", static_cast<int>(width[c]), columns_[c].c_str());
  std::fprintf(out, "\n");
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, "%-*s   ", static_cast<int>(width[c]), row[c].c_str());
    std::fprintf(out, "\n");
  }
  std::fflush(out);
}

std::string Table::to_csv() const {
  std::string out;
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string e = "\"";
    for (char ch : s) {
      if (ch == '"') e += '"';
      e += ch;
    }
    e += '"';
    return e;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ',';
    out += escape(columns_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_json() const {
  auto quote = [](const std::string& s) {
    std::string e = "\"";
    for (const char ch : s) {
      switch (ch) {
        case '"': e += "\\\""; break;
        case '\\': e += "\\\\"; break;
        case '\n': e += "\\n"; break;
        case '\r': e += "\\r"; break;
        case '\t': e += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(ch)));
            e += buf;
          } else {
            e += ch;
          }
      }
    }
    e += '"';
    return e;
  };
  std::string out = "{\"title\":" + quote(title_) + ",\"columns\":[";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ',';
    out += quote(columns_[c]);
  }
  out += "],\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out += ',';
    out += '[';
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c) out += ',';
      out += quote(rows_[r][c]);
    }
    out += ']';
  }
  out += "]}";
  return out;
}

}  // namespace abp
