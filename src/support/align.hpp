#pragma once

// Cache-line utilities used by the concurrent deques and the runtime.
//
// The ABP deque keeps `age` and `bot` on separate cache lines so that the
// owner's pushBottom/popBottom traffic does not false-share with thieves'
// popTop CAS traffic; per-worker counters are padded for the same reason.

#include <cstddef>
#include <new>

namespace abp {

// 64 bytes on every mainstream 64-bit target; pinned to a constant rather
// than std::hardware_destructive_interference_size so struct layouts do not
// silently change across compiler flags (GCC's -Winterference-size
// rationale).
inline constexpr std::size_t kCacheLineSize = 64;

// Wraps a value in its own cache line.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  CacheAligned() = default;
  explicit CacheAligned(const T& v) : value(v) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace abp
