#pragma once

// Lightweight always-on assertion macros.
//
// Unlike <cassert>, these fire in release builds too: the simulator and the
// concurrent deques guard algorithmic invariants (structural lemma, deque
// bounds) that we want checked in every configuration, including the
// benchmark builds that reproduce the paper's experiments.

#include <cstdio>
#include <cstdlib>

namespace abp {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ABP assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace abp

#define ABP_ASSERT(expr)                                         \
  do {                                                           \
    if (!(expr)) ::abp::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ABP_ASSERT_MSG(expr, msg)                                \
  do {                                                           \
    if (!(expr)) ::abp::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
