#pragma once

// Compile-time lock discipline (DESIGN.md §15).
//
// Annotated synchronization wrappers for every *blocking* primitive in the
// runtime, built on Clang's Thread Safety Analysis (Hutchins et al., "C/C++
// Thread Safety Analysis" — the capability model behind -Wthread-safety).
// The paper's non-blocking guarantees are proven elsewhere (src/model, the
// atomics lint); this header disciplines the lock-based half of the system
// — the parking lot, the dag-engine error slot, the metrics pump, the
// fiber synchronization objects, and the mutex/spinlock reference deques —
// so that a missing-lock field access or a condition wait without its
// predicate mutex is a *compile error* under the `analyze` build mode
// (-DABP_ANALYZE=ON, clang only) instead of a lost-wakeup hunt for the
// watchdog.
//
// Conventions (enforced by tools/context_lint.py in every build):
//   * no raw std::mutex / std::condition_variable / std::lock_guard /
//     std::unique_lock outside this header — use sync::Mutex, sync::CondVar
//     and sync::MutexLock so every acquisition is visible to the analysis;
//   * every field a mutex guards carries ABP_GUARDED_BY(mu_);
//   * every function called with a lock held carries ABP_REQUIRES(mu_)
//     instead of a "requires mu_ held" comment;
//   * CondVar waits name their predicate mutex (wait(mu, pred)), which the
//     REQUIRES annotation checks at every call site.
//
// The macros expand to nothing on non-clang compilers (and on clang
// versions without the capability attribute), so gcc builds are
// byte-identical to the unannotated code.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "support/backoff.hpp"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ABP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ABP_THREAD_ANNOTATION
#define ABP_THREAD_ANNOTATION(x)  // no-op off clang
#endif

// A type that acts as a lock: its instances are capability expressions.
#define ABP_CAPABILITY(name) ABP_THREAD_ANNOTATION(capability(name))
// A RAII type whose constructor acquires and destructor releases.
#define ABP_SCOPED_CAPABILITY ABP_THREAD_ANNOTATION(scoped_lockable)
// Data members: may only be touched while holding the named capability.
#define ABP_GUARDED_BY(x) ABP_THREAD_ANNOTATION(guarded_by(x))
#define ABP_PT_GUARDED_BY(x) ABP_THREAD_ANNOTATION(pt_guarded_by(x))
// Functions: caller must hold / must not hold the named capabilities.
#define ABP_REQUIRES(...) \
  ABP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ABP_EXCLUDES(...) ABP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Functions that acquire / release capabilities as a side effect.
#define ABP_ACQUIRE(...) \
  ABP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ABP_RELEASE(...) \
  ABP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ABP_TRY_ACQUIRE(...) \
  ABP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// Escape hatch for protocols the analysis cannot express (cross-context
// lock hand-off in the fiber scheduler). Every use carries a comment
// naming the dynamic argument that replaces the static one.
#define ABP_NO_THREAD_SAFETY_ANALYSIS \
  ABP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace abp::sync {

// Annotated std::mutex. Prefer MutexLock over manual lock()/unlock(); the
// manual pair exists for protocols (chaos engine generation rebind) where
// a scoped region is impossible.
class ABP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ABP_ACQUIRE() { mu_.lock(); }
  void unlock() ABP_RELEASE() { mu_.unlock(); }
  bool try_lock() ABP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped acquisition (the lock_guard/unique_lock replacement). The
// analysis credits the constructor with acquiring `mu` and the destructor
// with releasing it, so guarded fields are writable exactly within the
// lexical scope of the lock object.
class ABP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ABP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() ABP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Annotated condition variable. Every wait names its predicate mutex, and
// ABP_REQUIRES(mu) makes "cv.wait without the predicate lock held" — the
// classic lost-wakeup seed — a compile error at the call site. Backed by
// condition_variable_any waiting on the wrapped std::mutex directly: the
// waits live on control-plane and parking slow paths, where the
// (historically minor) size/speed edge of plain condition_variable is
// irrelevant next to the checked discipline.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) ABP_REQUIRES(mu) { cv_.wait(mu.mu_); }

  // Predicate forms. The wrapper lambda is exempt from analysis: the
  // predicate runs with `mu` held (the cv re-acquires before each check),
  // but that fact is dynamic — callers annotate their predicate with
  // ABP_REQUIRES(mu) and the analysis checks its *body* at the definition
  // site instead.
  template <typename Pred>
  void wait(Mutex& mu, Pred pred) ABP_REQUIRES(mu) {
    cv_.wait(mu.mu_,
             [&]() ABP_NO_THREAD_SAFETY_ANALYSIS { return pred(); });
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& d)
      ABP_REQUIRES(mu) {
    return cv_.wait_for(mu.mu_, d);
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& d,
                Pred pred) ABP_REQUIRES(mu) {
    return cv_.wait_for(
        mu.mu_, d, [&]() ABP_NO_THREAD_SAFETY_ANALYSIS { return pred(); });
  }

 private:
  std::condition_variable_any cv_;
};

// Annotated test-and-set spinlock (a TRY_ACQUIRE capability): the 1998-era
// user-level lock of the spinlock reference deque, and the fiber layer's
// wait-list guard. Exposed here so both carry the same capability type —
// the fiber scheduler's cross-context hand-off (lock released by the
// worker *after* the blocked fiber swapped out) is annotated at the
// hand-off functions themselves (fiber.cpp).
class ABP_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept ABP_ACQUIRE() {
    Backoff backoff;
    while (flag_.test_and_set(std::memory_order_acquire)) backoff.pause();
  }
  // The honest 1990s variant: no backoff, pure test-and-set spin — the
  // worst case under lock-holder preemption (spinlock_deque.hpp, E10).
  void lock_unyielding() noexcept ABP_ACQUIRE() {
    while (flag_.test_and_set(std::memory_order_acquire)) cpu_relax();
  }
  void unlock() noexcept ABP_RELEASE() {
    flag_.clear(std::memory_order_release);
  }
  bool try_lock() noexcept ABP_TRY_ACQUIRE(true) {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Scoped spinlock acquisition.
class ABP_SCOPED_CAPABILITY SpinLockHolder {
 public:
  explicit SpinLockHolder(SpinLock& l) ABP_ACQUIRE(l) : lock_(l) {
    lock_.lock();
  }
  ~SpinLockHolder() ABP_RELEASE() { lock_.unlock(); }

  SpinLockHolder(const SpinLockHolder&) = delete;
  SpinLockHolder& operator=(const SpinLockHolder&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace abp::sync
