#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace abp {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> sample, double p) {
  ABP_ASSERT(!sample.empty());
  ABP_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double fit_through_origin(const std::vector<double>& x,
                          const std::vector<double>& y) {
  ABP_ASSERT(x.size() == y.size());
  double sxy = 0.0;
  double sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += x[i] * y[i];
    sxx += x[i] * x[i];
  }
  return sxx > 0.0 ? sxy / sxx : 0.0;
}

TwoVarFit fit_two_regressors(const std::vector<double>& x1,
                             const std::vector<double>& x2,
                             const std::vector<double>& y) {
  ABP_ASSERT(x1.size() == y.size() && x2.size() == y.size());
  // Normal equations for the 2x2 system:
  //   [s11 s12] [a]   [s1y]
  //   [s12 s22] [b] = [s2y]
  double s11 = 0, s12 = 0, s22 = 0, s1y = 0, s2y = 0, syy = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    s11 += x1[i] * x1[i];
    s12 += x1[i] * x2[i];
    s22 += x2[i] * x2[i];
    s1y += x1[i] * y[i];
    s2y += x2[i] * y[i];
    syy += y[i] * y[i];
  }
  TwoVarFit fit;
  const double det = s11 * s22 - s12 * s12;
  if (std::abs(det) < 1e-12) {
    // Degenerate design matrix: fall back to a single-regressor fit.
    fit.a = fit_through_origin(x1, y);
    fit.b = 0.0;
  } else {
    fit.a = (s22 * s1y - s12 * s2y) / det;
    fit.b = (s11 * s2y - s12 * s1y) / det;
  }
  double ss_res = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - fit.a * x1[i] - fit.b * x2[i];
    ss_res += r * r;
  }
  fit.r2 = syy > 0.0 ? 1.0 - ss_res / syy : 0.0;
  return fit;
}

}  // namespace abp
