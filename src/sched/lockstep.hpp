#pragma once

// Instruction-granular work stealer — the §4.1 round model implemented
// exactly, closing the one abstraction the coarse engine (engine.hpp)
// makes.
//
// The coarse engine charges one *action* (a node execution or a whole
// steal attempt) per scheduled process per round. Here, instead:
//
//   * every shared-memory instruction of the Figure 3 loop and of the
//     Figure 5 deque methods is one step;
//   * the kernel schedules in rounds; a scheduled process executes exactly
//     2c instructions per round (c = kC below), interleaved round-robin
//     with the other scheduled processes — an in-round interleaving the
//     kernel controls in the paper, realized here as a fixed fair one;
//   * deque operations can therefore *span* rounds, preemption can strike
//     between any two deque instructions, and concurrent popTop CASes can
//     fail against each other (the relaxed semantics in action);
//   * milestones are as defined in §4 (a node execution, or the completion
//     of a popTop), c is large enough that any c consecutive instructions
//     of a process contain a milestone, and a steal attempt is a *throw*
//     iff it completes at its process's second milestone in a round — at
//     most one throw per process per round, exactly the paper's
//     accounting.
//
// Running the theorems' experiments in this model (tests and experiment
// E21) shows the coarse model's results are not an artifact of its
// granularity: bound shapes, throw counts and ablations agree.

#include <cstdint>
#include <vector>

#include "dag/dag.hpp"
#include "dag/enabling.hpp"
#include "sched/work_stealer.hpp"
#include "sim/kernel.hpp"

namespace abp::sched {

// Any c consecutive instructions of a process include a milestone: the
// longest milestone-free stretch is popBottom (6 instructions) plus the
// node-execution instruction and the thief preamble (yield + victim pick).
inline constexpr int kC = 10;
inline constexpr int kInstructionsPerRound = 2 * kC;

struct LockstepMetrics {
  bool completed = false;
  sim::Round rounds = 0;
  std::uint64_t instructions = 0;       // instruction slots granted
  std::uint64_t total_scheduled = 0;    // sum of |scheduled| over rounds
  double processor_average = 0.0;       // PA over rounds
  std::uint64_t executed_nodes = 0;
  std::uint64_t steal_attempts = 0;     // completed popTop invocations
  std::uint64_t successful_steals = 0;
  std::uint64_t throws = 0;             // §4.1 definition
  std::uint64_t cas_failures = 0;       // popTop CAS lost to a peer
  double t1 = 0.0, tinf = 0.0, p = 0.0;

  // length/(T1/PA + Tinf*P/PA): O(1) with a model-dependent constant
  // (several instructions per node, 2c instructions per round).
  double bound_ratio() const noexcept {
    if (processor_average <= 0.0) return 0.0;
    return static_cast<double>(rounds) /
           ((t1 + tinf * p) / processor_average);
  }
};

struct LockstepOptions {
  sim::YieldKind yield = sim::YieldKind::kToRandom;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1ull << 32;
};

// Executes `d` with kernel.num_processes() processes under `kernel`, at
// instruction granularity.
LockstepMetrics run_lockstep_work_stealer(const dag::Dag& d,
                                          sim::Kernel& kernel,
                                          const LockstepOptions& opts = {});

}  // namespace abp::sched
