#pragma once

// The potential function of §4.2.
//
// Each ready node u has weight w(u) = Tinf - depth(u) (enabling-tree
// depth). Its potential is
//     phi(u) = 3^(2w(u)-1)  if u is assigned,
//              3^(2w(u))    if u is in a deque.
// The run starts with potential 3^(2*Tinf - 1) (the root, assigned) and
// ends at 0; it never increases. Lemma 6 (Top-Heavy Deques): for a process
// q with non-empty deque, the topmost node contributes >= 3/4 of q's
// potential. Lemma 8: over any stretch containing >= P throws, the
// potential of the non-empty-deque processes drops by >= 1/4 with
// probability > 1/4.
//
// We evaluate phi in long double; with Tinf <= ~4900 the largest term
// 3^(2*Tinf) still fits in the extended range (~1e4932). Callers that trace
// potential use dags within that range; an assert guards it.

#include <vector>

#include "sched/work_stealer.hpp"

namespace abp::sched {

struct PotentialBreakdown {
  long double total = 0.0L;
  long double empty_deque_part = 0.0L;     // Phi(A_i): deque empty
  long double nonempty_deque_part = 0.0L;  // Phi(D_i): deque non-empty
  // min over processes with non-empty deque of phi(top)/Phi(q);
  // Lemma 6 asserts this is >= 3/4. = 1 when no process qualifies.
  long double min_top_fraction = 1.0L;
  std::size_t nonempty_deques = 0;
};

long double node_potential(std::uint32_t weight, bool assigned);

PotentialBreakdown compute_potential(const EngineView& view);

// Phase accounting for the Lemma 8 experiment: the caller feeds the
// potential at each phase boundary (every >= P throws); we count the
// fraction of phases in which Phi(D) — plus the assigned-node executions'
// share — dropped by at least 1/4.
class PhaseStats {
 public:
  void start(long double initial_potential);
  void boundary(long double potential_now);

  std::size_t phases() const noexcept { return phases_; }
  std::size_t successful() const noexcept { return successful_; }
  double success_fraction() const noexcept {
    return phases_ > 0 ? static_cast<double>(successful_) /
                             static_cast<double>(phases_)
                       : 0.0;
  }

 private:
  bool started_ = false;
  long double last_ = 0.0L;
  std::size_t phases_ = 0;
  std::size_t successful_ = 0;
};

}  // namespace abp::sched
