#pragma once

// Multiprogrammed job mixes: several computations, each with its own
// non-blocking work stealer, sharing one simulated machine — the scenario
// of §1 ("a parallel design verifier may execute concurrently with other
// serial and parallel applications") and the §5 comparison of kernel-level
// scheduling disciplines:
//
//   * static space partitioning — each job owns a fixed processor share
//     for the whole run (idle once it finishes);
//   * coscheduling (gang scheduling) — time is sliced into quanta and each
//     unfinished job gets the whole machine during its quantum (§5: "a job
//     mix consisting of one parallel computation and one serial
//     computation cannot be coscheduled efficiently");
//   * equipartition — processors are split evenly among unfinished jobs
//     every round;
//   * process control [Tucker & Gupta] — like equipartition, but a job's
//     share is capped by how many of its processes actually hold work,
//     with the leftovers redistributed.
//
// The paper's own contribution is orthogonal: *whatever* the kernel does,
// each job's work stealer finishes in O(T1/PA + Tinf*P/PA) with PA the
// processor average that job actually received. run_multiprogrammed
// verifies exactly that, per job, while also reporting the mix-level
// utilization that separates the kernel disciplines.

#include <cstdint>
#include <vector>

#include "dag/dag.hpp"
#include "sched/work_stealer.hpp"
#include "sim/profile.hpp"

namespace abp::sched {

enum class AllocationPolicy : std::uint8_t {
  kSpacePartition,
  kCoschedule,
  kEquipartition,
  kProcessControl,
};

const char* to_string(AllocationPolicy policy) noexcept;

struct JobSpec {
  const dag::Dag* dag = nullptr;
  std::size_t num_processes = 1;  // processes the job creates (its P)
  Options opts;                   // per-job scheduler options
  sim::Round arrival_round = 0;   // the job launches at this global round
                                  // (§1: "a moment later, someone may
                                  // launch another computation")
};

struct JobResult {
  bool completed = false;
  sim::Round finish_round = 0;  // global round at which the job finished
  sim::Round response_rounds = 0;  // finish_round - arrival_round
  RunMetrics metrics;           // per-job metrics (its own PA, throws, ...)
};

struct MultiprogResult {
  sim::Round makespan = 0;
  std::uint64_t capacity_slots = 0;  // processors * makespan
  std::uint64_t granted_slots = 0;   // processor-rounds given to live jobs
  double utilization = 0.0;          // total work / capacity_slots
  std::vector<JobResult> jobs;
};

struct MultiprogOptions {
  std::size_t processors = 8;  // the machine the kernel multiplexes (Q)
  AllocationPolicy policy = AllocationPolicy::kEquipartition;
  sim::Round gang_quantum = 25;  // coscheduling time slice
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1ull << 30;
};

MultiprogResult run_multiprogrammed(const std::vector<JobSpec>& jobs,
                                    const MultiprogOptions& options);

}  // namespace abp::sched
