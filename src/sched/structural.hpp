#pragma once

// Checker for the structural lemma (Lemma 3) and its corollary.
//
// For a process with assigned node v0 and deque nodes v1..vk (bottom to
// top), let u_i be the designated parent of v_i in the enabling tree. Then
// u_1, ..., u_k lie on a root-to-leaf path: u_i is an ancestor of u_{i-1},
// properly for i >= 2 (u_1 may equal u_0). Corollary 4: the weights satisfy
// w(v0) <= w(v1) < w(v2) < ... < w(vk).

#include <string>

#include "sched/work_stealer.hpp"

namespace abp::sched {

// Returns "" if the process's deque+assigned state satisfies Lemma 3 and
// Corollary 4 against the (partial) enabling tree; otherwise a description.
std::string check_structural_lemma(const ProcState& proc,
                                   const dag::EnablingTree& tree,
                                   const dag::Dag& d);

}  // namespace abp::sched
