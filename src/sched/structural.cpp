#include "sched/structural.hpp"

#include <vector>

#include "support/assert.hpp"

namespace abp::sched {

namespace {

// Is `anc` an ancestor of `node` (inclusive) in the enabling tree?
bool is_ancestor_or_equal(const dag::EnablingTree& tree, dag::NodeId anc,
                          dag::NodeId node) {
  // Climb from `node` until depth(anc) is reached.
  const std::uint32_t target_depth = tree.depth(anc);
  dag::NodeId cur = node;
  while (tree.depth(cur) > target_depth) cur = tree.parent(cur);
  return cur == anc;
}

}  // namespace

std::string check_structural_lemma(const ProcState& proc,
                                   const dag::EnablingTree& tree,
                                   const dag::Dag& d) {
  (void)d;
  if (proc.dq.empty()) return {};  // lemma holds vacuously

  // v[0] = assigned node (if any), v[1..k] = deque bottom..top.
  std::vector<dag::NodeId> v;
  const bool has_assigned = proc.assigned != dag::kNoNode;
  if (has_assigned) v.push_back(proc.assigned);
  for (auto it = proc.dq.rbegin(); it != proc.dq.rend(); ++it)
    v.push_back(*it);  // dq back = bottom

  // Designated parents. Every deque node was enabled (recorded) before
  // being pushed; the root never coexists with a non-empty deque owner's
  // assigned slot after its execution, but be defensive anyway.
  std::vector<dag::NodeId> u(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!tree.known(v[i])) return "deque/assigned node not in enabling tree";
    u[i] = tree.parent(v[i]);
    if (u[i] == dag::kNoNode && tree.depth(v[i]) != 0)
      return "non-root node without designated parent";
  }

  // With no assigned node, the lemma's indices shift: treat the bottom
  // deque node as v1 with no v0, i.e. only check v1..vk among themselves
  // (all relationships proper).
  const std::size_t first_checked = 1;
  for (std::size_t i = first_checked; i < v.size(); ++i) {
    if (u[i] == dag::kNoNode || u[i - 1] == dag::kNoNode)
      return "root node unexpectedly inside a non-empty deque chain";
    if (!is_ancestor_or_equal(tree, u[i], u[i - 1]))
      return "designated parents not on a root-to-leaf path";
    // Proper except possibly between the assigned node and the bottom
    // deque node (u1 may equal u0).
    const bool equality_allowed = has_assigned && i == 1;
    if (!equality_allowed && u[i] == u[i - 1])
      return "ancestor relationship not proper";
  }

  // Corollary 4: w(v0) <= w(v1) < w(v2) < ... < w(vk); equivalently depths
  // strictly decrease from bottom to top (non-strictly between v0 and v1).
  for (std::size_t i = 1; i < v.size(); ++i) {
    const bool equality_allowed = has_assigned && i == 1;
    const auto d_prev = tree.depth(v[i - 1]);
    const auto d_cur = tree.depth(v[i]);
    if (equality_allowed ? d_cur > d_prev : d_cur >= d_prev)
      return "weights not strictly decreasing from top to bottom";
  }
  return {};
}

}  // namespace abp::sched
