#include "sched/multiprog.hpp"

#include <algorithm>
#include <memory>

#include "sched/engine.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace abp::sched {

const char* to_string(AllocationPolicy policy) noexcept {
  switch (policy) {
    case AllocationPolicy::kSpacePartition: return "space-partition";
    case AllocationPolicy::kCoschedule: return "coschedule";
    case AllocationPolicy::kEquipartition: return "equipartition";
    case AllocationPolicy::kProcessControl: return "process-control";
  }
  return "?";
}

namespace {

// Splits `total` processors among jobs: each job i receives at most
// cap[i]; live jobs share evenly, leftovers go round-robin to jobs with
// spare capacity. Finished jobs have cap[i] == 0.
std::vector<std::size_t> waterfill(std::size_t total,
                                   const std::vector<std::size_t>& cap) {
  const std::size_t k = cap.size();
  std::vector<std::size_t> give(k, 0);
  std::size_t live = 0;
  for (std::size_t c : cap) live += c > 0 ? 1 : 0;
  if (live == 0) return give;
  std::size_t remaining = total;
  // Even base share.
  const std::size_t base = total / live;
  for (std::size_t i = 0; i < k; ++i) {
    if (cap[i] == 0) continue;
    give[i] = std::min(base, cap[i]);
    remaining -= give[i];
  }
  // Redistribute leftovers one at a time to jobs with spare capacity.
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (std::size_t i = 0; i < k && remaining > 0; ++i) {
      if (give[i] < cap[i]) {
        ++give[i];
        --remaining;
        progress = true;
      }
    }
  }
  return give;
}

}  // namespace

MultiprogResult run_multiprogrammed(const std::vector<JobSpec>& jobs,
                                    const MultiprogOptions& options) {
  ABP_ASSERT(!jobs.empty());
  ABP_ASSERT(options.processors >= 1);
  const std::size_t k = jobs.size();

  std::vector<std::unique_ptr<WorkStealerEngine>> engines;
  engines.reserve(k);
  for (const JobSpec& job : jobs) {
    ABP_ASSERT(job.dag != nullptr && job.dag->is_valid());
    engines.push_back(std::make_unique<WorkStealerEngine>(
        *job.dag, job.num_processes, job.opts));
  }

  MultiprogResult result;
  result.jobs.resize(k);
  Xoshiro256 rng(options.seed);

  // Static shares for space partitioning (fixed for the whole run).
  std::vector<std::size_t> static_share(k, options.processors / k);
  for (std::size_t i = 0; i < options.processors % k; ++i) ++static_share[i];

  std::size_t gang_turn = 0;  // coscheduling: whose quantum is it
  sim::Round quantum_left = options.gang_quantum;

  sim::Round round = 0;
  std::size_t unfinished = k;
  auto live = [&](std::size_t i) {
    return round > jobs[i].arrival_round && !engines[i]->done();
  };
  while (unfinished > 0 && round < options.max_rounds) {
    ++round;

    // 1. Decide each job's processor count for this round.
    std::vector<std::size_t> counts(k, 0);
    switch (options.policy) {
      case AllocationPolicy::kSpacePartition:
        ABP_ASSERT_MSG(options.processors >= k,
                       "space partitioning needs at least one processor "
                       "per job");
        for (std::size_t i = 0; i < k; ++i)
          if (live(i))
            counts[i] = std::min(static_share[i], jobs[i].num_processes);
        break;
      case AllocationPolicy::kCoschedule: {
        // Advance to the next live job's quantum if needed. (If nothing is
        // live yet — all jobs still to arrive — the machine idles.)
        std::size_t probes = 0;
        while (!live(gang_turn) && probes < k) {
          gang_turn = (gang_turn + 1) % k;
          quantum_left = options.gang_quantum;
          ++probes;
        }
        if (live(gang_turn)) {
          counts[gang_turn] =
              std::min(jobs[gang_turn].num_processes, options.processors);
          if (--quantum_left == 0) {
            gang_turn = (gang_turn + 1) % k;
            quantum_left = options.gang_quantum;
          }
        }
        break;
      }
      case AllocationPolicy::kEquipartition: {
        std::vector<std::size_t> cap(k, 0);
        for (std::size_t i = 0; i < k; ++i)
          if (live(i)) cap[i] = jobs[i].num_processes;
        counts = waterfill(options.processors, cap);
        break;
      }
      case AllocationPolicy::kProcessControl: {
        // Cap by the job's current parallelism: the kernel-level analogue
        // of the application shrinking/growing its process count [36].
        // The cap is twice the number of processes currently holding work
        // so the job can still unfold parallelism (thieves need processor
        // time to create busy processes); a serial job is pinned to 1.
        std::vector<std::size_t> cap(k, 0);
        for (std::size_t i = 0; i < k; ++i) {
          if (!live(i)) continue;
          const std::size_t busy = engines[i]->busy_processes();
          cap[i] = std::min(jobs[i].num_processes,
                            std::max<std::size_t>(2 * busy, 1));
        }
        counts = waterfill(options.processors, cap);
        break;
      }
    }

    // 2. Run one round of every unfinished job with its allocation; the
    //    processes scheduled within a job are chosen uniformly at random
    //    (a benign kernel from each job's point of view).
    for (std::size_t i = 0; i < k; ++i) {
      if (!live(i)) continue;
      const std::size_t count =
          std::min(counts[i], jobs[i].num_processes);
      result.granted_slots += count;
      std::vector<sim::ProcId> scheduled;
      scheduled.reserve(count);
      for (std::size_t idx :
           rng.sample_without_replacement(jobs[i].num_processes, count))
        scheduled.push_back(static_cast<sim::ProcId>(idx));
      engines[i]->round(std::move(scheduled));
      if (engines[i]->done()) {
        result.jobs[i].completed = true;
        result.jobs[i].finish_round = round;
        result.jobs[i].response_rounds = round - jobs[i].arrival_round;
        --unfinished;
      }
    }
  }

  result.makespan = round;
  result.capacity_slots =
      static_cast<std::uint64_t>(options.processors) * round;
  double total_work = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    result.jobs[i].metrics = engines[i]->metrics();
    total_work += static_cast<double>(jobs[i].dag->work());
  }
  result.utilization =
      result.capacity_slots > 0
          ? total_work / static_cast<double>(result.capacity_slots)
          : 0.0;
  return result;
}

}  // namespace abp::sched
