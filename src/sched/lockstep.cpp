#include "sched/lockstep.hpp"

#include <vector>

#include "sim/yield.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace abp::sched {

namespace {

using dag::kNoNode;
using dag::NodeId;

// Instruction-level ABP deque over NodeIds (the Figure 5 machine, sized
// for real dags). All accesses are serialized by the engine, which models
// the shared memory one instruction at a time.
struct LsDeque {
  std::uint32_t top = 0;
  std::uint32_t tag = 0;  // together with top: the 'age' word
  std::uint64_t bot = 0;
  std::vector<NodeId> deq;
};

struct DequeOp {
  enum class Kind : std::uint8_t { kNone, kPush, kPopBottom, kPopTop };
  Kind kind = Kind::kNone;
  int pc = 0;
  NodeId arg = kNoNode;
  NodeId node = kNoNode;
  NodeId result = kNoNode;  // valid when an op completes
  bool cas_failed = false;  // popTop lost its CAS this completion
  std::uint64_t local_bot = 0;
  std::uint32_t old_top = 0, old_tag = 0, new_top = 0, new_tag = 0;

  void start(Kind k, NodeId argument = kNoNode) {
    *this = DequeOp{};
    kind = k;
    arg = argument;
  }
};

// Executes one instruction of `op` against `q`; returns true when the
// invocation completed (result/cas_failed are then valid).
bool step_deque(LsDeque& q, DequeOp& op) {
  switch (op.kind) {
    case DequeOp::Kind::kPush:
      switch (op.pc) {
        case 0:
          op.local_bot = q.bot;
          op.pc = 1;
          return false;
        case 1:
          ABP_ASSERT_MSG(op.local_bot < q.deq.size(),
                         "lockstep deque overflow");
          q.deq[op.local_bot] = op.arg;
          op.pc = 2;
          return false;
        case 2:
          q.bot = op.local_bot + 1;
          return true;
      }
      break;
    case DequeOp::Kind::kPopTop:
      switch (op.pc) {
        case 0:
          op.old_top = q.top;
          op.old_tag = q.tag;
          op.pc = 1;
          return false;
        case 1:
          op.local_bot = q.bot;
          if (op.local_bot <= op.old_top) {
            op.result = kNoNode;
            return true;
          }
          op.pc = 2;
          return false;
        case 2:
          op.node = q.deq[op.old_top];
          op.pc = 3;
          return false;
        case 3:
          if (q.top == op.old_top && q.tag == op.old_tag) {
            q.top = op.old_top + 1;
            op.result = op.node;
          } else {
            op.result = kNoNode;
            op.cas_failed = true;
          }
          return true;
      }
      break;
    case DequeOp::Kind::kPopBottom:
      switch (op.pc) {
        case 0:
          op.local_bot = q.bot;
          if (op.local_bot == 0) {
            op.result = kNoNode;
            return true;
          }
          op.pc = 1;
          return false;
        case 1:
          --op.local_bot;
          q.bot = op.local_bot;
          op.pc = 2;
          return false;
        case 2:
          op.node = q.deq[op.local_bot];
          op.pc = 3;
          return false;
        case 3:
          op.old_top = q.top;
          op.old_tag = q.tag;
          if (op.local_bot > op.old_top) {
            op.result = op.node;
            return true;
          }
          op.new_top = 0;
          op.new_tag = op.old_tag + 1;
          op.pc = 4;
          return false;
        case 4:
          q.bot = 0;
          op.pc = 5;
          return false;
        case 5:
          if (op.local_bot == op.old_top && q.top == op.old_top &&
              q.tag == op.old_tag) {
            q.top = op.new_top;
            q.tag = op.new_tag;
            op.result = op.node;
            return true;
          }
          op.pc = 6;
          return false;
        case 6:
          q.top = op.new_top;
          q.tag = op.new_tag;
          op.result = kNoNode;
          return true;
      }
      break;
    case DequeOp::Kind::kNone:
      break;
  }
  ABP_ASSERT_MSG(false, "step_deque: invalid state");
  return true;
}

struct Proc {
  enum class State : std::uint8_t {
    kExecute,     // has an assigned node to execute
    kOwnDeque,    // running a push_bottom / pop_bottom on the own deque
    kThiefYield,  // about to perform the yield system call
    kThiefPick,   // about to pick a random victim
    kStealing,    // running pop_top on the victim's deque
  };
  State state = State::kThiefYield;
  NodeId assigned = kNoNode;
  DequeOp op;
  sim::ProcId victim = 0;
  int milestones_this_round = 0;
};

}  // namespace

LockstepMetrics run_lockstep_work_stealer(const dag::Dag& d,
                                          sim::Kernel& kernel,
                                          const LockstepOptions& opts) {
  ABP_ASSERT_MSG(d.is_valid(), "dag must satisfy structural assumptions");
  const std::size_t num_procs = kernel.num_processes();
  ABP_ASSERT(num_procs >= 1);

  LockstepMetrics m;
  m.t1 = static_cast<double>(d.work());
  m.tinf = static_cast<double>(d.critical_path_length());
  m.p = static_cast<double>(num_procs);

  std::vector<std::uint32_t> remaining(d.num_nodes());
  for (NodeId n = 0; n < d.num_nodes(); ++n) remaining[n] = d.in_degree(n);
  dag::EnablingTree tree(d);

  // Deque bot never exceeds Tinf between resets: items pushed along one
  // assigned chain have strictly decreasing weights (Lemma 3), so at most
  // Tinf pushes can occur before the owner's pop empties and resets it.
  const std::size_t capacity = d.critical_path_length() + 8;
  std::vector<LsDeque> deques(num_procs);
  for (auto& q : deques) q.deq.assign(capacity, kNoNode);

  std::vector<Proc> procs(num_procs);
  const NodeId root = d.root();
  const NodeId final_node = d.final_node();
  procs[0].state = Proc::State::kExecute;
  procs[0].assigned = root;
  tree.set_root(root);

  sim::YieldLedger ledger(num_procs, opts.yield);
  Xoshiro256 rng(opts.seed);
  std::vector<sim::ProcessView> views(num_procs);
  bool done = false;
  sim::Round round = 0;

  auto milestone = [&](Proc& self) { ++self.milestones_this_round; };

  // One instruction of process p.
  auto instruction = [&](sim::ProcId p, sim::Round now) {
    Proc& self = procs[p];
    ++m.instructions;
    switch (self.state) {
      case Proc::State::kExecute: {
        const NodeId node = self.assigned;
        ABP_ASSERT(node != kNoNode);
        NodeId child[2];
        int num_children = 0;
        for (const NodeId s : d.successors(node)) {
          if (--remaining[s] == 0) {
            tree.record(node, s);
            child[num_children++] = s;
          }
        }
        ++m.executed_nodes;
        milestone(self);
        if (node == final_node) done = true;
        if (num_children == 0) {
          self.assigned = kNoNode;
          self.op.start(DequeOp::Kind::kPopBottom);
          self.state = Proc::State::kOwnDeque;
        } else if (num_children == 1) {
          self.assigned = child[0];
        } else {
          int cont = -1;
          for (int i = 0; i < 2; ++i)
            if (d.thread_of(child[i]) == d.thread_of(node)) cont = i;
          const int to_assign = (cont == -1) ? 1 : 1 - cont;  // child-first
          self.assigned = child[to_assign];
          self.op.start(DequeOp::Kind::kPush, child[1 - to_assign]);
          self.state = Proc::State::kOwnDeque;
        }
        return;
      }
      case Proc::State::kOwnDeque: {
        if (!step_deque(deques[p], self.op)) return;
        if (self.op.kind == DequeOp::Kind::kPush) {
          self.state = Proc::State::kExecute;
        } else if (self.op.result != kNoNode) {
          self.assigned = self.op.result;
          self.state = Proc::State::kExecute;
        } else {
          self.state = Proc::State::kThiefYield;
        }
        return;
      }
      case Proc::State::kThiefYield: {
        if (opts.yield == sim::YieldKind::kToRandom) {
          sim::ProcId target = p;
          if (num_procs > 1) {
            target = static_cast<sim::ProcId>(rng.below(num_procs - 1));
            if (target >= p) ++target;
          }
          ledger.on_yield(p, now, target);
        } else if (opts.yield == sim::YieldKind::kToAll) {
          ledger.on_yield(p, now, p);
        }
        self.state = Proc::State::kThiefPick;
        return;
      }
      case Proc::State::kThiefPick: {
        self.victim = static_cast<sim::ProcId>(rng.below(num_procs));
        self.op.start(DequeOp::Kind::kPopTop);
        self.state = Proc::State::kStealing;
        return;
      }
      case Proc::State::kStealing: {
        if (!step_deque(deques[self.victim], self.op)) return;
        ++m.steal_attempts;
        if (self.op.cas_failed) ++m.cas_failures;
        milestone(self);
        // §4.1: this attempt is a throw iff it completes at the process's
        // second milestone in the round.
        if (self.milestones_this_round == 2) ++m.throws;
        if (self.op.result != kNoNode) {
          self.assigned = self.op.result;
          self.state = Proc::State::kExecute;
        } else {
          self.state = Proc::State::kThiefYield;
        }
        return;
      }
    }
  };

  while (!done) {
    if (round >= opts.max_rounds) break;
    ++round;
    for (std::size_t q = 0; q < num_procs; ++q) {
      views[q].has_assigned_node = procs[q].assigned != kNoNode;
      const auto& dq = deques[q];
      views[q].deque_size =
          dq.bot > dq.top ? static_cast<std::size_t>(dq.bot - dq.top) : 0;
      procs[q].milestones_this_round = 0;
    }
    const std::vector<sim::ProcId> scheduled =
        ledger.enforce(kernel.schedule(round, views), round);
    m.total_scheduled += scheduled.size();
    // Round-robin in-round interleaving: one instruction per scheduled
    // process per pass, 2c passes.
    for (int k = 0; k < kInstructionsPerRound && !done; ++k)
      for (const sim::ProcId p : scheduled) {
        if (done) break;
        instruction(p, round);
      }
    ledger.note_scheduled(scheduled, round);
  }

  m.completed = done;
  m.rounds = round;
  m.processor_average =
      round > 0 ? static_cast<double>(m.total_scheduled) /
                      static_cast<double>(round)
                : 0.0;
  return m;
}

}  // namespace abp::sched
