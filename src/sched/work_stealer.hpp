#pragma once

// The non-blocking work stealer of §3 (Figure 3), executed inside the
// round-based kernel model of §2/§4.1.
//
// Each process owns a deque of ready nodes and an assigned node. At every
// round the kernel (an adversary, see sim/kernel.hpp) schedules a subset of
// processes; each scheduled process performs one scheduling-loop action:
//
//   * if it has an assigned node: execute it, then follow Figure 3's cases
//     — 0 enabled children: pop_bottom for a new assigned node;
//       1 child: the child becomes the assigned node;
//       2 children: push one, assign the other;
//   * otherwise it is a thief: it performs its yield call, picks a uniform
//     random victim, and attempts pop_top on the victim's deque.
//
// Rounds in the paper consist of 2C..3C instructions, enough for at least
// two milestones; our unit of time is one such round, i.e. one node
// execution or one completed steal attempt per scheduled process. Under
// that identification *every* completed steal attempt is a throw (§4.1: at
// most one throw per process per round, completing in the round in which
// the victim is drawn), so the throw count equals the steal-attempt count.

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>

#include "dag/dag.hpp"
#include "dag/enabling.hpp"
#include "obs/timeline.hpp"
#include "sim/cache.hpp"
#include "sim/exec.hpp"
#include "sim/kernel.hpp"
#include "sim/yield.hpp"
#include "support/cancel.hpp"

namespace abp::sched {

// Which of the two enabled nodes becomes the new assigned node when an
// execution enables two children (Figure 3 lines 11-13). The paper proves
// its bounds for either choice; kChild is the depth-first order "often
// used" by Cilk-style systems.
enum class SpawnOrder : std::uint8_t {
  kChild,   // assign the child / newly enabled node, push the other
  kParent,  // keep following the current thread, push the newly enabled node
};

const char* to_string(SpawnOrder order) noexcept;

// Steal-policy layer (DESIGN.md §12), mirroring the real runtime's
// StealPolicy / VictimPolicy so the theorem benches can measure policy
// effect on throws.
enum class StealKind : std::uint8_t {
  kSingle,     // the paper's popTop: one node per successful steal
  kStealHalf,  // claim up to half the victim's deque in one steal; the
               // thief assigns the oldest node and keeps the surplus
};

enum class VictimKind : std::uint8_t {
  kUniform,          // uniform random victim (the paper's algorithm)
  kNearestNeighbor,  // ring probing: distance 1, 2, ... per failed attempt
  kLastVictim,       // re-try the last successfully robbed victim first
  kHintAware,        // prefer the engine's posted steal hint (the simulator
                     // stand-in for the runtime watchdog's hint board: a
                     // process whose deque grows deep posts itself), else
                     // uniform
};

const char* to_string(StealKind k) noexcept;
const char* to_string(VictimKind k) noexcept;

// Per-process scheduler state, exposed read-only to hooks and invariant
// checkers.
struct ProcState {
  std::deque<dag::NodeId> dq;  // bottom = back, top = front
  dag::NodeId assigned = dag::kNoNode;
  // Victim-selection state (mirrors Worker::ring_distance_/last_victim_).
  std::size_t ring_distance = 0;
  std::size_t last_victim = static_cast<std::size_t>(-1);
};

struct EngineView {
  std::span<const ProcState> procs;
  const dag::EnablingTree& tree;
  sim::Round round = 0;
  std::uint64_t throws = 0;
};

using RoundHook = std::function<void(const EngineView&)>;

struct Options {
  sim::YieldKind yield = sim::YieldKind::kToRandom;
  SpawnOrder spawn_order = SpawnOrder::kChild;
  // Steal-policy layer: how much a steal takes, and from whom.
  StealKind steal = StealKind::kSingle;
  VictimKind victim = VictimKind::kUniform;
  std::size_t steal_batch_limit = 8;  // per-steal cap under kStealHalf
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1ull << 32;
  bool keep_record = false;
  // Check the structural lemma (Lemma 3 / Corollary 4) after every action.
  // O(deque length * tree depth) per action — test-sized runs only.
  bool check_structural_lemma = false;
  RoundHook after_round;  // optional; called at the end of every round
  // Observability sink: when set, the engine records per-round p_i /
  // scheduled / executed / cumulative-throw samples into it, exportable as
  // a Chrome trace in the same format as the real runtime's.
  obs::SimTimeline* timeline = nullptr;
  // Additionally sample the potential Φ of §4.2 each round (stored as
  // log10 Φ). O(nodes held) per round — simulation-sized runs only.
  bool sample_potential = false;
  // Cooperative cancellation, checked between rounds: a fired token stops
  // the simulation at the next round boundary (RunMetrics::cancelled).
  // Default-constructed = never cancelled.
  CancelToken cancel{};
  // Simulated cache layer (DESIGN.md §14): when enabled, every node
  // execution is charged against the executing process's LRU cache model
  // and the per-run totals land in RunMetrics::cache. Off by default — the
  // model costs O(footprint · capacity) per node.
  bool model_cache = false;
  sim::CacheModelConfig cache{};
};

struct RunMetrics {
  bool completed = false;  // false: hit max_rounds (e.g. starved, no yield)
                           // or the run was cancelled
  bool cancelled = false;  // the Options::cancel token fired mid-run
  sim::Round length = 0;
  std::uint64_t total_scheduled = 0;
  double processor_average = 0.0;
  std::uint64_t executed_nodes = 0;
  std::uint64_t steal_attempts = 0;  // == throws in the round model
  std::uint64_t successful_steals = 0;
  // Steal-policy layer: batch claims and their total size (a steal-half
  // claim counts once in successful_steals and once here), successful
  // steals from a non-uniform preference, and the summed ring distance
  // |thief - victim| over successful steals.
  std::uint64_t batch_steals = 0;
  std::uint64_t batch_stolen_items = 0;
  std::uint64_t preferred_victim_hits = 0;
  std::uint64_t victim_distance_sum = 0;
  std::uint64_t yields = 0;
  std::uint64_t pop_bottom_calls = 0;
  std::uint64_t push_bottom_calls = 0;
  // Simulated cache totals (Options::model_cache; all zero otherwise).
  // cache.misses - cache.steal_misses is the intrinsic miss count; at
  // P = 1 it equals the sequential cache complexity Q1 exactly.
  sim::CacheCounters cache{};
  // Online span profile (DESIGN.md §13): the longest enabling chain
  // root..final observed by the run itself, folded per executed edge. On a
  // completed run this equals the static tinf below — the simulator-side
  // cross-check of the runtime's measured-span machinery.
  std::uint64_t measured_span_nodes = 0;

  double t1 = 0.0;
  double tinf = 0.0;
  double p = 0.0;

  // O(T1/PA + Tinf*P/PA) with constant 1, the paper's bound shape.
  double bound() const noexcept {
    return processor_average > 0.0
               ? (t1 + tinf * p) / processor_average
               : 0.0;
  }
  // length / bound(): the empirical "constant hidden in the big-Oh".
  double bound_ratio() const noexcept {
    const double b = bound();
    return b > 0.0 ? static_cast<double>(length) / b : 0.0;
  }

  sim::ExecutionRecord record{false};
  std::string structural_violation;  // empty when the invariant held
  std::string enabling_violation;    // empty when the enabling tree is valid
};

// Executes `d` with `num_processes`-many processes under `kernel`.
RunMetrics run_work_stealer(const dag::Dag& d, sim::Kernel& kernel,
                            const Options& opts = {});

}  // namespace abp::sched
