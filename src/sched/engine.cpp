#include "sched/engine.hpp"

#include <cmath>

#include "sched/potential.hpp"
#include "support/assert.hpp"

namespace abp::sched {

WorkStealerEngine::WorkStealerEngine(const dag::Dag& d,
                                     std::size_t num_processes,
                                     const Options& opts)
    : dag_(d),
      opts_(opts),
      remaining_(d.num_nodes()),
      path_(d.num_nodes(), 0),
      tree_(d),
      procs_(num_processes),
      ledger_(num_processes, opts.yield),
      rng_(opts.seed),
      views_(num_processes) {
  ABP_ASSERT(num_processes >= 1);
  ABP_ASSERT_MSG(d.is_valid(), "dag must satisfy the structural assumptions");
  final_node_ = d.final_node();
  for (dag::NodeId n = 0; n < d.num_nodes(); ++n)
    remaining_[n] = d.in_degree(n);
  const dag::NodeId root = d.root();
  procs_[0].assigned = root;  // "processZero" gets the root node (Figure 3)
  path_[root] = 1;
  tree_.set_root(root);

  metrics_.t1 = static_cast<double>(d.work());
  metrics_.tinf = static_cast<double>(d.critical_path_length());
  metrics_.p = static_cast<double>(num_processes);
  metrics_.record = sim::ExecutionRecord(opts.keep_record);
  if (opts.model_cache)
    cache_ = std::make_unique<sim::CacheModel>(d, opts.cache, num_processes);
}

const std::vector<sim::ProcessView>& WorkStealerEngine::views() {
  for (std::size_t q = 0; q < procs_.size(); ++q) {
    views_[q].has_assigned_node = procs_[q].assigned != dag::kNoNode;
    views_[q].deque_size = procs_[q].dq.size();
  }
  return views_;
}

std::size_t WorkStealerEngine::busy_processes() const {
  std::size_t busy = 0;
  for (const ProcState& q : procs_)
    busy += (q.assigned != dag::kNoNode || !q.dq.empty()) ? 1 : 0;
  return busy;
}

void WorkStealerEngine::process_action(sim::ProcId p) {
  ProcState& self = procs_[p];
  RunMetrics& m = metrics_;
  if (self.assigned != dag::kNoNode) {
    // Execute the assigned node (Figure 3, lines 5-13).
    const dag::NodeId node = self.assigned;
    const std::uint64_t my_path = path_[node];
    dag::NodeId child[2];
    int num_children = 0;
    for (const dag::NodeId s : dag_.successors(node)) {
      if (path_[s] < my_path + 1) path_[s] = my_path + 1;  // span edge
      if (--remaining_[s] == 0) {
        tree_.record(node, s);  // (node, s) is an enabling edge
        child[num_children++] = s;
      }
    }
    m.record.record_execute(p, node);
    if (cache_) cache_->on_execute(p, node);
    ++executed_;
    if (node == final_node_) done_ = true;

    if (num_children == 0) {
      // Assigned thread died or blocked: pop a new assigned node.
      ++m.pop_bottom_calls;
      if (self.dq.empty()) {
        self.assigned = dag::kNoNode;
      } else {
        self.assigned = self.dq.back();
        self.dq.pop_back();
      }
    } else if (num_children == 1) {
      self.assigned = child[0];
    } else {
      // Enable or spawn: push one child, assign the other. Identify the
      // same-thread continuation to honour the configured order; if
      // neither child continues this thread, the choice is immaterial
      // (the bounds hold for either, §3.1).
      int cont = -1;
      for (int i = 0; i < 2; ++i)
        if (dag_.thread_of(child[i]) == dag_.thread_of(node)) cont = i;
      int to_assign;
      if (cont == -1) {
        to_assign = 1;
      } else {
        to_assign = opts_.spawn_order == SpawnOrder::kParent ? cont : 1 - cont;
      }
      ++m.push_bottom_calls;
      self.dq.push_back(child[1 - to_assign]);
      self.assigned = child[to_assign];
      // Hint board: a producer whose deque grew deep is worth advertising
      // (the watchdog posts stalled-rich workers in the real runtime).
      if (opts_.victim == VictimKind::kHintAware &&
          self.dq.size() >= kHintDepth)
        steal_hint_ = p;
    }
  } else {
    // Thief (Figure 3, lines 14-17): yield, then one steal attempt.
    ++m.yields;
    const auto num_procs = procs_.size();
    if (opts_.yield == sim::YieldKind::kToRandom) {
      // Uniform random target among the other processes.
      sim::ProcId target = p;
      if (num_procs > 1) {
        target = static_cast<sim::ProcId>(rng_.below(num_procs - 1));
        if (target >= p) ++target;
      }
      ledger_.on_yield(p, round_, target);
    } else if (opts_.yield == sim::YieldKind::kToAll) {
      ledger_.on_yield(p, round_, p);
    }

    // Victim selection (DESIGN.md §12). The paper's algorithm draws
    // uniformly over all P processes (balls into P bins, as in Lemma 7;
    // stealing from oneself just fails); the alternative kinds prefer a
    // deterministic candidate and fall back to the uniform draw, so the
    // Lemma 7 analysis still upper bounds the attempt count.
    bool preferred = false;
    sim::ProcId victim = 0;
    switch (opts_.victim) {
      case VictimKind::kNearestNeighbor:
        if (num_procs > 1) {
          if (self.ring_distance == 0 || self.ring_distance >= num_procs)
            self.ring_distance = 1;
          victim = static_cast<sim::ProcId>((p + self.ring_distance) %
                                            num_procs);
          ++self.ring_distance;
          preferred = true;
        } else {
          victim = static_cast<sim::ProcId>(rng_.below(num_procs));
        }
        break;
      case VictimKind::kLastVictim:
        if (self.last_victim != static_cast<std::size_t>(-1) &&
            self.last_victim < num_procs && self.last_victim != p) {
          victim = static_cast<sim::ProcId>(self.last_victim);
          preferred = true;
        } else {
          victim = static_cast<sim::ProcId>(rng_.below(num_procs));
        }
        break;
      case VictimKind::kHintAware:
        if (steal_hint_ != kNoHint && steal_hint_ < num_procs &&
            steal_hint_ != p) {
          victim = static_cast<sim::ProcId>(steal_hint_);
          preferred = true;
        } else {
          victim = static_cast<sim::ProcId>(rng_.below(num_procs));
        }
        break;
      case VictimKind::kUniform:
        victim = static_cast<sim::ProcId>(rng_.below(num_procs));
        break;
    }
    ++m.steal_attempts;
    ProcState& v = procs_[victim];
    if (victim != p && !v.dq.empty()) {
      // popTop succeeded: claim one node, or a steal-half batch — up to
      // half the victim's deque in the single linearized claim the real
      // deque's pop_top_batch provides. Either way this is ONE throw.
      std::size_t take = 1;
      if (opts_.steal == StealKind::kStealHalf) {
        take = (v.dq.size() + 1) / 2;
        if (opts_.steal_batch_limit != 0 && take > opts_.steal_batch_limit)
          take = opts_.steal_batch_limit;
        ++m.batch_steals;
        m.batch_stolen_items += take;
      }
      // The deepest node of the stolen prefix becomes the assigned node;
      // the shallower surplus enters the thief's deque in its original
      // top-to-bottom order. This keeps Lemma 3 / Corollary 4 intact for
      // the thief: depths still decrease strictly from bottom to top and
      // the assigned node is the deepest (see check_structural_lemma).
      for (std::size_t i = 0; i + 1 < take; ++i) {
        self.dq.push_back(v.dq.front());
        v.dq.pop_front();
      }
      self.assigned = v.dq.front();
      v.dq.pop_front();
      ++m.successful_steals;
      if (preferred) ++m.preferred_victim_hits;
      const std::size_t gap = victim > p ? victim - p : p - victim;
      m.victim_distance_sum += gap < num_procs - gap ? gap : num_procs - gap;
      self.ring_distance = 0;
      // Cache the victim only while it still has work: a steal-half claim
      // often drains the victim outright, and re-trying a known-empty
      // deque is a wasted throw. (The real runtime cannot see the victim's
      // size, so it clears the cache lazily in its kEmpty arm instead.)
      self.last_victim =
          v.dq.empty() ? static_cast<std::size_t>(-1) : victim;
      // A drained hint victim is retired the same way.
      if (steal_hint_ == victim && v.dq.empty()) steal_hint_ = kNoHint;
    } else {
      if (victim == self.last_victim)
        self.last_victim = static_cast<std::size_t>(-1);
      if (steal_hint_ == victim) steal_hint_ = kNoHint;
    }
    m.record.record_idle(p);
  }
}

std::size_t WorkStealerEngine::round(std::vector<sim::ProcId> proposed) {
  ABP_ASSERT_MSG(!done_, "round() called on a finished engine");
  ++round_;
  const std::uint64_t executed_before = executed_;
  const std::size_t num_proposed = proposed.size();
  std::vector<sim::ProcId> scheduled =
      ledger_.enforce(std::move(proposed), round_);
  metrics_.record.begin_round(scheduled.size());
  // The paper serializes the instructions of concurrently scheduled
  // processes in an arbitrary kernel-chosen order; we use the order the
  // kernel produced them in.
  for (const sim::ProcId p : scheduled) {
    ABP_ASSERT(p < procs_.size());
    process_action(p);
  }
  ledger_.note_scheduled(scheduled, round_);
  metrics_.length = round_;
  const std::size_t executed_now =
      static_cast<std::size_t>(executed_ - executed_before);
  if (opts_.timeline != nullptr) {
    // p_i as handed to us may already carry the kernel's choice via
    // note_kernel_choice; record the engine-side view regardless, since in
    // multiprogrammed runs this engine sees only its own slice.
    opts_.timeline->note_kernel_choice(round_,
                                       static_cast<std::uint32_t>(num_proposed));
    opts_.timeline->end_round(round_,
                              static_cast<std::uint32_t>(scheduled.size()),
                              static_cast<std::uint32_t>(executed_now),
                              metrics_.steal_attempts);
    if (opts_.sample_potential) {
      const EngineView view{std::span<const ProcState>(procs_), tree_, round_,
                            metrics_.steal_attempts};
      const PotentialBreakdown phi = compute_potential(view);
      const double log10_phi =
          phi.total > 0.0L
              ? static_cast<double>(std::log10(phi.total))
              : 0.0;
      opts_.timeline->sample_potential(round_, log10_phi);
    }
  }
  return executed_now;
}

const RunMetrics& WorkStealerEngine::metrics() {
  RunMetrics& m = metrics_;
  m.completed = done_;
  m.executed_nodes = executed_;
  m.measured_span_nodes = final_node_ != dag::kNoNode ? path_[final_node_] : 0;
  m.length = round_;
  m.total_scheduled = m.record.total_scheduled();
  m.processor_average = m.record.processor_average();
  if (cache_) m.cache = cache_->totals();
  if (m.completed) {
    ABP_ASSERT_MSG(executed_ == dag_.num_nodes(),
                   "final node executed before the rest of the dag");
    m.enabling_violation = tree_.validate(dag_.num_nodes());
  }
  return metrics_;
}

}  // namespace abp::sched
