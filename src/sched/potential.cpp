#include "sched/potential.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace abp::sched {

long double node_potential(std::uint32_t weight, bool assigned) {
  ABP_ASSERT_MSG(weight >= 1 && weight <= 4900,
                 "potential tracing supports Tinf <= 4900 (long double "
                 "range); run the tracer on smaller dags");
  const int exponent = assigned ? static_cast<int>(2 * weight) - 1
                                : static_cast<int>(2 * weight);
  return std::pow(3.0L, static_cast<long double>(exponent));
}

PotentialBreakdown compute_potential(const EngineView& view) {
  PotentialBreakdown out;
  for (const ProcState& q : view.procs) {
    long double phi_q = 0.0L;
    long double phi_top = 0.0L;
    if (q.assigned != dag::kNoNode)
      phi_q += node_potential(view.tree.weight(q.assigned), /*assigned=*/true);
    for (dag::NodeId n : q.dq)
      phi_q += node_potential(view.tree.weight(n), /*assigned=*/false);
    if (!q.dq.empty())
      phi_top = node_potential(view.tree.weight(q.dq.front()), false);

    out.total += phi_q;
    if (q.dq.empty()) {
      out.empty_deque_part += phi_q;
    } else {
      out.nonempty_deque_part += phi_q;
      ++out.nonempty_deques;
      if (phi_q > 0.0L) {
        const long double frac = phi_top / phi_q;
        if (frac < out.min_top_fraction) out.min_top_fraction = frac;
      }
    }
  }
  return out;
}

void PhaseStats::start(long double initial_potential) {
  started_ = true;
  last_ = initial_potential;
}

void PhaseStats::boundary(long double potential_now) {
  ABP_ASSERT(started_);
  if (last_ <= 0.0L) return;  // execution effectively over
  ++phases_;
  if (potential_now <= 0.75L * last_) ++successful_;
  last_ = potential_now;
}

}  // namespace abp::sched
