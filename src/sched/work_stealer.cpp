#include "sched/work_stealer.hpp"

#include <utility>

#include "sched/engine.hpp"
#include "sched/structural.hpp"
#include "support/assert.hpp"

namespace abp::sched {

const char* to_string(SpawnOrder order) noexcept {
  switch (order) {
    case SpawnOrder::kChild: return "child-first";
    case SpawnOrder::kParent: return "parent-first";
  }
  return "?";
}

const char* to_string(StealKind k) noexcept {
  switch (k) {
    case StealKind::kSingle: return "single";
    case StealKind::kStealHalf: return "steal-half";
  }
  return "?";
}

const char* to_string(VictimKind k) noexcept {
  switch (k) {
    case VictimKind::kUniform: return "uniform";
    case VictimKind::kNearestNeighbor: return "nearest-neighbor";
    case VictimKind::kLastVictim: return "last-victim";
    case VictimKind::kHintAware: return "hint-aware";
  }
  return "?";
}

RunMetrics run_work_stealer(const dag::Dag& d, sim::Kernel& kernel,
                            const Options& opts) {
  ABP_ASSERT_MSG(d.is_valid(),
                 "dag must satisfy the structural assumptions");
  WorkStealerEngine engine(d, kernel.num_processes(), opts);
  // Single-computation run: the engine's timeline doubles as the kernel's
  // p_i sink unless the caller wired the kernel to its own.
  if (opts.timeline != nullptr && kernel.timeline() == nullptr)
    kernel.attach_timeline(opts.timeline);
  RunMetrics out;

  bool cancelled = false;
  while (!engine.done()) {
    if (opts.cancel.cancelled()) {  // stop at a round boundary
      cancelled = true;
      break;
    }
    if (engine.rounds_run() >= opts.max_rounds) break;  // starved
    engine.round(kernel.schedule(engine.rounds_run() + 1, engine.views()));

    if (opts.check_structural_lemma && out.structural_violation.empty()) {
      for (const ProcState& q : engine.procs()) {
        std::string err = check_structural_lemma(q, engine.tree(), d);
        if (!err.empty()) {
          out.structural_violation = std::move(err);
          break;
        }
      }
    }
    if (opts.after_round) {
      EngineView view{std::span<const ProcState>(engine.procs()),
                      engine.tree(), engine.rounds_run(),
                      engine.metrics().steal_attempts};
      opts.after_round(view);
    }
  }

  std::string structural = std::move(out.structural_violation);
  out = engine.metrics();
  out.structural_violation = std::move(structural);
  out.cancelled = cancelled;
  if (cancelled) out.completed = false;
  return out;
}

}  // namespace abp::sched
