#pragma once

// Resumable work-stealer engine: the Figure 3 scheduling loop exposed one
// round at a time, so that callers other than run_work_stealer() can drive
// it — in particular the multiprogramming co-scheduler (multiprog.hpp),
// which interleaves several computations under one kernel.
//
// The engine owns the per-process state (deques, assigned nodes), the
// enabling tree, the yield ledger, and the metrics; the caller supplies,
// per round, the set of its processes the kernel chose to schedule.

#include <memory>
#include <vector>

#include "dag/dag.hpp"
#include "dag/enabling.hpp"
#include "sched/work_stealer.hpp"
#include "sim/cache.hpp"
#include "sim/exec.hpp"
#include "sim/kernel.hpp"
#include "sim/yield.hpp"
#include "support/rng.hpp"

namespace abp::sched {

class WorkStealerEngine {
 public:
  WorkStealerEngine(const dag::Dag& d, std::size_t num_processes,
                    const Options& opts);

  std::size_t num_processes() const noexcept { return procs_.size(); }
  bool done() const noexcept { return done_; }

  // Observable per-process state for (adaptive) kernels; refreshed on call.
  const std::vector<sim::ProcessView>& views();

  // Executes one round: applies the yield-constraint enforcement to
  // `proposed`, then lets each scheduled process take one scheduling-loop
  // action. Returns the number of nodes executed this round.
  std::size_t round(std::vector<sim::ProcId> proposed);

  // How many of this computation's processes currently hold work (an
  // assigned node or a non-empty deque); >= 1 while unfinished. Used by
  // the process-control allocation policy.
  std::size_t busy_processes() const;

  // Finalizes and returns the metrics (completed flag, PA, etc.). The
  // engine may be queried mid-run; `length` then reflects rounds so far.
  const RunMetrics& metrics();

  const dag::EnablingTree& tree() const noexcept { return tree_; }
  const std::vector<ProcState>& procs() const noexcept { return procs_; }
  sim::Round rounds_run() const noexcept { return round_; }

 private:
  void process_action(sim::ProcId p);

  const dag::Dag& dag_;
  Options opts_;
  std::vector<std::uint32_t> remaining_;
  // Online span fold: path_[v] = longest executed enabling chain root..v.
  std::vector<std::uint64_t> path_;
  dag::EnablingTree tree_;
  std::vector<ProcState> procs_;
  sim::YieldLedger ledger_;
  Xoshiro256 rng_;
  std::vector<sim::ProcessView> views_;
  dag::NodeId final_node_ = dag::kNoNode;
  bool done_ = false;
  sim::Round round_ = 0;
  std::uint64_t executed_ = 0;
  // Simulated cache layer (Options::model_cache); null when disabled.
  std::unique_ptr<sim::CacheModel> cache_;
  // Hint board for VictimKind::kHintAware: the engine-global analogue of
  // the runtime watchdog's steal hint. A process posts itself when its
  // deque grows past kHintDepth; a failed or draining steal retires it.
  static constexpr std::size_t kNoHint = static_cast<std::size_t>(-1);
  static constexpr std::size_t kHintDepth = 2;
  std::size_t steal_hint_ = kNoHint;
  RunMetrics metrics_;
};

}  // namespace abp::sched
