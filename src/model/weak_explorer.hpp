#pragma once

// Stateless DPOR explorer over the weak machines.
//
// Same script/verdict conventions as explorer.hpp (process 0 is the
// owner; exactly-once + conservation checked), but the state now
// includes the weak-memory layer (weak.hpp): under kRA a load branches
// over every message the process's view permits, and under kTSO each
// pending store-buffer entry adds an asynchronous flush transition. The
// search is a depth-first enumeration of interleavings WITHOUT a state
// cache — so `nodes` (transitions executed) is directly comparable
// between the DPOR and the unreduced run, and a counterexample is simply
// the DFS path at the first violation.
//
// With `use_dpor` the search prunes with sleep sets plus a singleton
// persistent set (por.hpp); verdicts are identical, nodes shrink
// (tests/test_model_weak.cpp asserts >= 5x on the longest passing
// script; EXPERIMENTS.md E23 tabulates the counts).

#include <cstdint>
#include <string>
#include <vector>

#include "model/explorer.hpp"  // Op, Script
#include "model/weak.hpp"
#include "model/weak_machine.hpp"

namespace abp::model {

struct WExploreOptions {
  WMachine machine = WMachine::kAbp;
  MemModel model = MemModel::kRA;
  WAblation ablation{};
  // kRA only: use the C11-as-published seq_cst-fence semantics (fences
  // relate writes only) instead of the C++20/P0668 strengthening. Under
  // the weak semantics Chase-Lev's steal CAS must itself be seq_cst;
  // under the strong one the surrounding fences subsume it. See weak.hpp.
  bool weak_sc_fences = false;
  // Arm the growable machine's steal-half protocol: scripts may contain
  // Method::kPopTopBatch, and the owner's popBottom runs the
  // defended-window tag bump (enable_batch_steals in the real deque).
  bool batch_steals = false;
  bool use_dpor = true;
  bool track_distinct = true;  // count deduplicated states (informational)
  std::size_t max_nodes = 20'000'000;
};

struct WTraceStep {
  std::uint8_t proc = 0;
  std::string what;  // "chase_lev.pop_top.cas cas[seq_cst] loc2 4->5 ok"
};

struct WExploreResult {
  std::size_t nodes = 0;            // transitions executed (DFS edges)
  std::size_t distinct_states = 0;  // deduplicated states (informational)
  std::size_t terminal_states = 0;
  std::size_t sleep_pruned = 0;     // transitions skipped by the sleep set
  bool ok = true;                   // no violation found
  std::string violation;
  std::vector<WTraceStep> trace;  // counterexample interleaving (on !ok)
  bool truncated = false;         // hit max_nodes

  // A capped exploration proves nothing: callers must check passed(),
  // not ok, so truncation can never read as a pass.
  bool passed() const noexcept { return ok && !truncated; }
};

WExploreResult wexplore(const std::vector<Script>& scripts,
                        const WExploreOptions& options = {});

// Human-readable counterexample: one numbered line per trace step.
std::string format_trace(const WExploreResult& result);

}  // namespace abp::model
