#include "model/linearize.hpp"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace abp::model {

namespace {

constexpr std::uint8_t kNil = SharedDeque::kEmptySlot;

// Serial deque used as the linearization specification.
struct SpecDeque {
  std::deque<std::uint8_t> items;

  // Applies `e` serially; returns false if the result is inconsistent.
  bool apply(const HistoryEvent& e) {
    switch (e.method) {
      case Method::kPushBottom:
        items.push_back(e.arg);
        return true;
      case Method::kPopBottom:
        if (items.empty()) return e.result == kNil;
        if (e.result != items.back()) return false;
        items.pop_back();
        return true;
      case Method::kPopTop:
        // NIL popTops were dropped from the history.
        if (items.empty() || e.result != items.front()) return false;
        items.pop_front();
        return true;
      case Method::kPopTopBatch:
        // Histories are recorded per returned item: a batch of k shows up
        // as k consecutive front pops at the same linearization point.
        if (items.empty() || e.result != items.front()) return false;
        items.pop_front();
        return true;
      case Method::kTransfer:
        // Publishing the private segment moves no items in or out.
        return true;
      case Method::kIdle:
        return true;
    }
    return false;
  }

  std::string key() const {
    return std::string(items.begin(), items.end());
  }
};

// Backtracking search for a linearization (Wing & Gong): at each step we
// may linearize any not-yet-linearized event that is real-time minimal —
// no other pending event *completed* before it *started*. Memoized on
// (linearized set, spec state).
struct Searcher {
  const std::vector<HistoryEvent>& history;
  std::unordered_set<std::string> failed;  // memo of dead configurations

  explicit Searcher(const std::vector<HistoryEvent>& h) : history(h) {}

  bool search(std::uint64_t done_mask, const SpecDeque& spec) {
    const std::size_t n = history.size();
    if (done_mask == (n >= 64 ? ~0ull : ((1ull << n) - 1))) return true;
    std::string memo_key = std::to_string(done_mask) + '|' + spec.key();
    if (failed.count(memo_key)) return false;

    // The earliest completion among pending events bounds which events may
    // be linearized next (real-time order must be respected).
    std::uint64_t earliest_end = ~0ull;
    for (std::size_t i = 0; i < n; ++i)
      if (!(done_mask & (1ull << i)))
        earliest_end = std::min(earliest_end, history[i].end);

    for (std::size_t i = 0; i < n; ++i) {
      if (done_mask & (1ull << i)) continue;
      if (history[i].start > earliest_end) continue;  // not minimal
      SpecDeque next = spec;
      if (!next.apply(history[i])) continue;
      if (search(done_mask | (1ull << i), next)) return true;
    }
    failed.insert(std::move(memo_key));
    return false;
  }
};

}  // namespace

bool check_relaxed_linearizable(std::vector<HistoryEvent> history) {
  // Drop NIL-returning popTops: under the relaxed semantics they carry no
  // linearizability obligation (and touch no shared state).
  history.erase(std::remove_if(history.begin(), history.end(),
                               [](const HistoryEvent& e) {
                                 return e.method == Method::kPopTop &&
                                        e.result == kNil;
                               }),
                history.end());
  ABP_ASSERT_MSG(history.size() < 64, "history too long for the checker");
  Searcher searcher(history);
  return searcher.search(0, SpecDeque{});
}

bool random_execution_is_linearizable(const std::vector<Script>& scripts,
                                      std::uint64_t seed, bool disable_tag) {
  SharedDeque mem;
  std::vector<Invocation> inv(scripts.size());
  std::vector<std::size_t> next_op(scripts.size(), 0);
  std::vector<HistoryEvent> history;
  std::vector<std::size_t> open_event(scripts.size(), ~0ull);
  Xoshiro256 rng(seed);
  std::uint64_t clock = 0;

  auto runnable = [&](std::size_t p) {
    return !inv[p].idle() || next_op[p] < scripts[p].size();
  };

  for (;;) {
    std::vector<std::size_t> candidates;
    for (std::size_t p = 0; p < scripts.size(); ++p)
      if (runnable(p)) candidates.push_back(p);
    if (candidates.empty()) break;
    const std::size_t p =
        candidates[static_cast<std::size_t>(rng.below(candidates.size()))];

    ++clock;
    if (inv[p].idle()) {
      const Op& op = scripts[p][next_op[p]++];
      inv[p].start(op.method, op.value);
      open_event[p] = history.size();
      history.push_back(HistoryEvent{op.method, op.value, kNil, clock, 0});
    }
    const StepOutcome outcome = step_abp(mem, inv[p], disable_tag);
    if (outcome == StepOutcome::kDone) {
      HistoryEvent& e = history[open_event[p]];
      e.end = clock;
      e.result = inv[p].result;
      open_event[p] = ~0ull;
    }
  }
  return check_relaxed_linearizable(std::move(history));
}

}  // namespace abp::model
