#pragma once

// Weak-memory layer for the model checker.
//
// The paper's pseudocode (Figure 5) assumes sequential consistency and
// notes that on real machines "extra memory operation ordering
// instructions may be needed". src/model/machine.cpp mechanizes the SC
// argument; this module supplies the missing half: an operational
// weak-memory semantics under which every shared load / store / CAS of a
// machine carries a declared memory_order (the same order the production
// deque names at the matching source line — tools/atomics_lint.py
// cross-checks the two), and the explorer enumerates exactly the
// reorderings that ordering permits.
//
// Three models, increasing in weakness:
//
//   kSC  — every access sees the latest store (the old explorer's world).
//   kTSO — per-process FIFO store buffers (x86): a store becomes visible
//          to other processes only when flushed; the owner reads its own
//          buffered stores (forwarding). CASes, seq_cst fences and seq_cst
//          stores drain the buffer first. This is the classic store->load
//          reordering that breaks popBottom's "store bot, then read age"
//          window.
//   kRA  — C11 release/acquire visibility edges, in the timestamp-and-view
//          style of operational C11 models (cf. the promising semantics):
//          each location keeps its full message history; each process
//          keeps a per-location view (the oldest message it may still
//          read). A release store attaches the writer's view to the
//          message; an acquire load that reads it joins that view —
//          that is the happens-before edge. Relaxed accesses move values
//          with no view transfer, so stale reads stay possible. seq_cst
//          accesses and fences additionally make a two-way join with a
//          global SC view, which is what forbids the store-buffering
//          outcome between two fenced processes (Chase-Lev's take/steal
//          fences, Lê et al. PPoPP 2013).
//
// Successful RMWs always read the latest message (atomicity) and continue
// release sequences: the new message inherits the view attached to the
// message it replaced, so an acquire reader of the RMW still synchronizes
// with the original release store.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace abp::model {

enum class MemOrder : std::uint8_t {
  kRelaxed,
  kAcquire,
  kRelease,
  kAcqRel,
  kSeqCst,
};

enum class MemModel : std::uint8_t { kSC, kTSO, kRA };

const char* to_string(MemOrder order) noexcept;
const char* to_string(MemModel model) noexcept;

inline constexpr bool acquires(MemOrder o) noexcept {
  return o == MemOrder::kAcquire || o == MemOrder::kAcqRel ||
         o == MemOrder::kSeqCst;
}
inline constexpr bool releases(MemOrder o) noexcept {
  return o == MemOrder::kRelease || o == MemOrder::kAcqRel ||
         o == MemOrder::kSeqCst;
}

// Shared-memory locations of one machine instance (top/bot/cells/...).
using Loc = std::uint8_t;
inline constexpr Loc kMaxLocs = 16;

// Per-location timestamp: index into that location's message history.
using Ts = std::uint8_t;

inline constexpr std::size_t kMaxProcs = 6;

// A process's (or message's) per-location lower bound on readable
// timestamps.
struct View {
  std::array<Ts, kMaxLocs> ts{};

  void join(const View& o) noexcept {
    for (std::size_t i = 0; i < kMaxLocs; ++i)
      if (o.ts[i] > ts[i]) ts[i] = o.ts[i];
  }
  bool operator==(const View&) const = default;
};

struct Message {
  std::uint8_t value = 0;
  bool has_view = false;  // set by release/seq_cst stores and by RMWs that
                          // continue a release sequence
  View view{};

  bool operator==(const Message&) const = default;
};

// One pending entry of a TSO store buffer.
struct PendingStore {
  Loc loc = 0;
  std::uint8_t value = 0;

  bool operator==(const PendingStore&) const = default;
};

class WeakMemory {
 public:
  // `strong_sc_fences` selects between two seq_cst-fence semantics under
  // kRA:
  //   true  — C++20 (post-P0668): a fence publishes the thread's whole
  //           view (reads included) into the global SC view and imports
  //           it back; read-read coherence holds across fence pairs.
  //   false — C11 as published: fences relate only WRITES ([atomics.order]
  //           p5-p7 of C++11) — a fence exports the thread's own writes
  //           and imports sc writes/exports, but what a thread has READ
  //           never enters the SC order. This is the weakness P0668
  //           repaired, and the semantics under which Chase-Lev's steal
  //           CAS must itself be seq_cst (tests/test_model_weak.cpp
  //           demonstrates both sides).
  void init(MemModel model, std::size_t nprocs,
            const std::vector<std::pair<Loc, std::uint8_t>>& initial,
            bool strong_sc_fences = true);

  MemModel model() const noexcept { return model_; }

  // ---- loads ---------------------------------------------------------------
  // All timestamps process p may read from `loc` with `order` (always at
  // least one: the latest). Under kSC/kTSO this is a single candidate.
  void load_candidates(std::size_t p, Loc loc, MemOrder order,
                       std::vector<Ts>& out) const;
  // Commits the read of message `ts` and returns its value, applying the
  // acquire / seq_cst view effects.
  std::uint8_t commit_load(std::size_t p, Loc loc, MemOrder order, Ts ts);

  // ---- stores / RMW / fences ----------------------------------------------
  // Under kTSO a relaxed/release store enters p's buffer; under kSC/kRA it
  // is applied immediately. seq_cst stores require an empty buffer (the
  // explorer drains via flush transitions first).
  void store(std::size_t p, Loc loc, std::uint8_t value, MemOrder order);

  struct CasResult {
    bool ok = false;
    std::uint8_t observed = 0;
  };
  CasResult cas(std::size_t p, Loc loc, std::uint8_t expected,
                std::uint8_t desired, MemOrder success, MemOrder failure);

  void fence(std::size_t p, MemOrder order);

  // ---- TSO store buffers ---------------------------------------------------
  bool buffer_empty(std::size_t p) const noexcept {
    return procs_[p].buffer.empty();
  }
  // True iff `order` on an access of the given kind forces a drained
  // buffer first (CAS / seq_cst fence / seq_cst store under kTSO).
  bool needs_drain(std::size_t p, bool is_cas_or_fence, MemOrder order) const
      noexcept {
    if (model_ != MemModel::kTSO) return false;
    if (buffer_empty(p)) return false;
    return is_cas_or_fence || order == MemOrder::kSeqCst;
  }
  Loc flush_loc(std::size_t p) const noexcept {
    return procs_[p].buffer.front().loc;
  }
  // Locations p's buffered stores will still write when flushed (bitmask);
  // part of p's future footprint for the persistent-set check.
  std::uint32_t buffered_writes(std::size_t p) const noexcept {
    std::uint32_t mask = 0;
    for (const PendingStore& s : procs_[p].buffer) mask |= 1u << s.loc;
    return mask;
  }
  void flush_one(std::size_t p);
  bool all_buffers_empty() const noexcept;

  // ---- inspection ----------------------------------------------------------
  std::uint8_t latest(Loc loc) const noexcept {
    return msgs_[loc].empty() ? 0 : msgs_[loc].back().value;
  }
  Ts latest_ts(Loc loc) const noexcept {
    return static_cast<Ts>(msgs_[loc].empty() ? 0 : msgs_[loc].size() - 1);
  }

  // Serializes the full memory state (messages, views, buffers) for
  // distinct-state counting.
  void key(std::string& out) const;

  bool operator==(const WeakMemory&) const = default;

 private:
  struct Proc {
    View view{};
    View write_view{};  // timestamps of this process's own stores (used
                        // by the weak C11 fence semantics: a fence may
                        // only export what the thread has WRITTEN)
    std::vector<PendingStore> buffer;  // kTSO only, FIFO

    bool operator==(const Proc&) const = default;
  };

  void append_message(std::size_t p, Loc loc, std::uint8_t value,
                      MemOrder order);

  MemModel model_ = MemModel::kSC;
  bool strong_sc_fences_ = true;
  std::array<std::vector<Message>, kMaxLocs> msgs_{};
  std::vector<Proc> procs_;
  View sc_view_{};  // kRA: the global SC view (see init for semantics)
};

}  // namespace abp::model
