#pragma once

// Instruction machines for the weak-memory explorer.
//
// Three deques, each compiled into a program-counter machine in which
// every shared access is one instruction carrying its declared
// memory_order (kOrderTable). The orders are the ones the production
// headers in src/deque name at the matching `// model-site:` anchor —
// tools/atomics_lint.py parses kOrderTable out of weak_machine.cpp and
// fails the build when the two drift.
//
//   * AbpMachine      — Figure 5 with the weakest orders the explorer
//                       proves sufficient (the paper assumes SC; the
//                       relaxations are justified per-site in
//                       src/deque/abp_deque.hpp).
//   * ChaseLevMachine — the circular-buffer take/steal pair with the
//                       fence placement of Lê et al. (PPoPP 2013); the
//                       machine is a fixed ring (growth is modeled by
//                       GrowableMachine's publish window).
//   * GrowableMachine — abp_growable_deque's buffer-publish protocol:
//                       copy the live window, release-publish the new
//                       buffer pointer, keep pushing.
//   * SplitMachine    — split_deque's public/private protocol: a shared
//                       (tag|top|split) word thieves CAS, an owner word
//                       accessed only relaxed, and an explicit kTransfer
//                       method release-publishing the private segment.
//
// Ablations demote one declared order (or freeze the ABP tag) so the
// explorer can produce the concrete violating interleaving that proves
// the order is load-bearing.

#include <cstdint>

#include "model/machine.hpp"  // Method
#include "model/weak.hpp"

namespace abp::model {

enum class WMachine : std::uint8_t { kAbp, kChaseLev, kGrowable, kSplit };

const char* to_string(WMachine m) noexcept;

struct WAblation {
  // ABP / growable: popBottom's reset keeps the old tag (the ABA bug;
  // same semantics as ExploreOptions::disable_tag, now under weak memory).
  bool frozen_tag = false;
  // Chase-Lev: pushBottom publishes bottom with relaxed instead of
  // release — a thief can observe the new bottom but not the item.
  bool cl_relaxed_bottom_store = false;
  // Chase-Lev: steal's bottom load is relaxed instead of acquire — the
  // thief observes bottom without joining the publishing view.
  bool cl_no_steal_acquire = false;
  // Chase-Lev: steal's CAS success order is relaxed instead of seq_cst —
  // the owner's fenced top read may miss a committed steal.
  bool cl_relaxed_cas = false;
  // Growable: the grown buffer pointer is published relaxed instead of
  // release — a thief can observe the new buffer but stale cell copies.
  bool grow_relaxed_publish = false;
  // Growable batch steal: the batch CAS claims two items but publishes
  // top+1 — the second item is both returned and still in the deque.
  bool batch_publish_short = false;
  // Growable batch steal: the owner's pop_bottom skips the defended-window
  // tag bump, so an in-flight batch CAS can commit a claim window the
  // owner has already popped from (double delivery).
  bool batch_no_defense = false;
  // Split: transfer's publish CAS is relaxed instead of release — a thief
  // can observe the advanced split but not the slot stores it covers.
  bool split_relaxed_transfer = false;
  // Split: the thief's word load is relaxed instead of acquire — the
  // thief observes the advanced split without joining the publishing view.
  bool split_no_steal_acquire = false;
  // Split: owner word-writes (transfer publish, reclaim shrink) keep the
  // old tag — the (top, split) pair can recur after a reclaim/republish
  // cycle and a stalled claim CAS resurrects a consumed item.
  bool split_frozen_tag = false;
  // Split: transfer publishes with a blind store instead of a CAS — a
  // claim committing inside the owner's read-to-store window is clobbered
  // (its top advance undone), so the stolen item is served twice.
  bool split_blind_publish = false;

  bool any() const noexcept {
    return frozen_tag || cl_relaxed_bottom_store || cl_no_steal_acquire ||
           cl_relaxed_cas || grow_relaxed_publish || batch_publish_short ||
           batch_no_defense || split_relaxed_transfer ||
           split_no_steal_acquire || split_frozen_tag || split_blind_publish;
  }
};

// Every (machine, shared access) site, in kOrderTable order.
enum class Site : std::uint8_t {
  kAbpPushBotLoad,
  kAbpPushItemStore,
  kAbpPushBotStore,
  kAbpTopAgeLoad,
  kAbpTopBotLoad,
  kAbpTopItemLoad,
  kAbpTopCas,
  kAbpBotBotLoad,
  kAbpBotBotStore,
  kAbpBotItemLoad,
  kAbpBotAgeLoad,
  kAbpBotBotReset,
  kAbpBotCas,
  kAbpBotAgeStore,
  kGrowPushBotLoad,
  kGrowPushBufLoad,
  kGrowGrowAgeLoad,
  kGrowGrowItemLoad,
  kGrowGrowItemStore,
  kGrowGrowPublish,
  kGrowPushItemStore,
  kGrowPushBotStore,
  kGrowTopAgeLoad,
  kGrowTopBotLoad,
  kGrowTopBufLoad,
  kGrowTopItemLoad,
  kGrowTopCas,
  kGrowBotBotLoad,
  kGrowBotBotStore,
  kGrowBotBufLoad,
  kGrowBotItemLoad,
  kGrowBotAgeLoad,
  kGrowBotBotReset,
  kGrowBotCas,
  kGrowBotAgeStore,
  kGrowBatchAgeLoad,
  kGrowBatchBotLoad,
  kGrowBatchBufLoad,
  kGrowBatchItemLoad,
  kGrowBatchCas,
  kGrowBotDefendCas,
  kClPushBotLoad,
  kClPushTopLoad,
  kClPushItemStore,
  kClPushBotStore,
  kClBotBotLoad,
  kClBotBotStore,
  kClBotFence,
  kClBotTopLoad,
  kClBotBotRestore,
  kClBotItemLoad,
  kClBotCas,
  kClBotBotReset,
  kClTopTopLoad,
  kClTopFence,
  kClTopBotLoad,
  kClTopItemLoad,
  kClTopCas,
  kSplitPushPbLoad,
  kSplitPushTsRefresh,
  kSplitPushItemStore,
  kSplitPushPbStore,
  kSplitPushHungerLoad,
  kSplitTransferPbLoad,
  kSplitTransferHungerClear,
  kSplitTransferTsLoad,
  kSplitTransferPublishCas,
  kSplitTransferPbStore,
  kSplitBotPbLoad,
  kSplitBotPbStore,
  kSplitBotItemLoad,
  kSplitReclaimTsLoad,
  kSplitReclaimShrinkCas,
  kSplitTopTsLoad,
  kSplitTopItemLoad,
  kSplitTopHungerStore,
  kSplitTopClaimCas,
  kSplitBatchTsLoad,
  kSplitBatchItemLoad,
  kSplitBatchHungerStore,
  kSplitBatchClaimCas,
  kSiteCount,
};

struct OrderSpec {
  const char* site;  // "machine.method.access", the anchor name in src/deque
  MemOrder order;
};

// Declared order of every site (indexed by Site). Parsed by
// tools/atomics_lint.py; see ATOMICS-LINT-TABLE markers in
// weak_machine.cpp.
const OrderSpec& order_spec(Site site) noexcept;

enum class InsnKind : std::uint8_t { kLoad, kStore, kCas, kFence };

// One shared-memory instruction, fully resolved against the invocation's
// registers. `order` already reflects any active ablation.
struct Insn {
  InsnKind kind = InsnKind::kLoad;
  Loc loc = 0;
  MemOrder order = MemOrder::kSeqCst;
  MemOrder failure_order = MemOrder::kRelaxed;
  std::uint8_t value = 0;     // store value / CAS desired
  std::uint8_t expected = 0;  // CAS expected
  Site site = Site::kSiteCount;

  const char* name() const noexcept { return order_spec(site).site; }
};

// Model constants shared with the explorer and tests.
inline constexpr std::uint8_t kWNil = 0xff;     // "no result" / NIL
inline constexpr std::uint8_t kWPoison = 62;    // never-pushed cell value
inline constexpr std::uint8_t kClBase = 4;      // Chase-Lev counter offset
inline constexpr int kAbpCap = 6;               // ABP model capacity
inline constexpr int kClCap = 4;                // Chase-Lev ring capacity
inline constexpr int kGrowCap0 = 2;             // growable: first buffer
inline constexpr int kGrowCap1 = 6;             // growable: grown buffer
inline constexpr int kWBatchCap = 2;            // model batch-claim cap
// Split model capacity: indices fit 2 bits so the packed word keeps a
// 4-bit tag — wide enough that no sane script wraps it (the scripted
// frozen-tag counterexample needs 4 owner word-writes; the safe machine
// would need 16 to recur).
inline constexpr int kSplitCap = 3;

// One in-flight invocation of a weak machine.
struct WInvocation {
  Method method = Method::kIdle;
  std::uint8_t pc = 0;
  std::uint8_t arg = 0;  // pushBottom argument
  std::uint8_t b = 0;    // bottom register
  std::uint8_t t = 0;    // top register
  std::uint8_t g = 0;    // tag register (ABP/growable)
  std::uint8_t x = 0;    // item register
  std::uint8_t bf = 0;   // buffer id register (growable)
  std::uint8_t i = 0;    // copy index (growable grow) / batch take count
  std::uint8_t ok = 0;   // CAS outcome register (Chase-Lev popBottom)
  std::uint8_t x2 = 0;   // second item register (growable popTopBatch)
  std::uint8_t result = kWNil;
  std::uint8_t result2 = kWNil;  // second result (growable popTopBatch)

  bool operator==(const WInvocation&) const = default;

  void start(Method m, std::uint8_t argument = 0) {
    *this = WInvocation{};
    method = m;
    arg = argument;
  }
  bool idle() const noexcept { return method == Method::kIdle; }
};

// Initial (loc, value) pairs for a machine's shared state.
std::vector<std::pair<Loc, std::uint8_t>> wm_initial(WMachine m);

// The instruction at the invocation's current pc. Pure: no state change.
// `batch_steals` arms the growable machine's steal-half protocol: the
// kPopTopBatch method becomes available and pop_bottom runs the
// defended-window tag bump (mirrors AbpGrowableDeque's
// enable_batch_steals constructor flag).
Insn wm_peek(WMachine m, const WInvocation& inv, const WAblation& abl,
             bool batch_steals = false);

// Advances the invocation after the explorer executed `insn`: `loaded` is
// the committed load value (or CAS observed value), `cas_ok` the CAS
// outcome. Sets method = kIdle and `result` (and `result2` for a batch)
// when the invocation retires on this instruction.
void wm_advance(WMachine m, WInvocation& inv, const Insn& insn,
                std::uint8_t loaded, bool cas_ok, const WAblation& abl,
                bool batch_steals = false);

// Conservative whole-method footprint (bitmasks over Loc) plus whether
// the method contains any seq_cst access; used by the persistent-set
// reduction.
struct Footprint {
  std::uint32_t reads = 0;
  std::uint32_t writes = 0;
  bool sc = false;
};
Footprint wm_footprint(WMachine m, Method method);

// Values still held by the deque at quiescence (bitmask), read from the
// latest messages.
std::uint64_t wm_remaining(WMachine m, const WeakMemory& mem);

}  // namespace abp::model
