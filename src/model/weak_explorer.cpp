#include "model/weak_explorer.hpp"

#include <unordered_set>

#include "model/por.hpp"
#include "support/assert.hpp"

namespace abp::model {

namespace {

struct WState {
  WeakMemory mem;
  std::vector<WInvocation> inv;
  std::vector<std::uint8_t> next_op;
  std::uint64_t claimed = 0;  // values already returned by a pop
};

// One DFS edge, kept raw on the path; formatted only on a violation.
struct RawStep {
  std::uint8_t proc = 0;
  bool is_flush = false;
  Insn insn{};
  std::uint8_t loaded = 0;  // load value / CAS observed / flushed value
  bool cas_ok = false;
  Loc flush_loc = 0;
};

struct Ctx {
  const std::vector<Script>& scripts;
  const WExploreOptions& opts;
  WExploreResult res;
  std::uint64_t pushed = 0;
  std::unordered_set<std::string> seen;
  std::vector<RawStep> path;
  std::vector<Ts> cand;  // scratch for load_candidates

  Ctx(const std::vector<Script>& s, const WExploreOptions& o)
      : scripts(s), opts(o) {}
};

struct Transition {
  TransAccess access;
  bool needs_start = false;
  Insn insn{};  // valid when !access.is_flush
};

void append_step(std::string& out, const RawStep& s) {
  auto num = [&out](unsigned v) { out += std::to_string(v); };
  out += 'P';
  num(s.proc);
  out += ' ';
  if (s.is_flush) {
    out += "tso-flush loc";
    num(s.flush_loc);
    out += " := ";
    num(s.loaded);
    return;
  }
  out += order_spec(s.insn.site).site;
  out += ' ';
  switch (s.insn.kind) {
    case InsnKind::kLoad:
      out += "load[";
      out += to_string(s.insn.order);
      out += "] loc";
      num(s.insn.loc);
      out += " -> ";
      num(s.loaded);
      break;
    case InsnKind::kStore:
      out += "store[";
      out += to_string(s.insn.order);
      out += "] loc";
      num(s.insn.loc);
      out += " := ";
      num(s.insn.value);
      break;
    case InsnKind::kCas:
      out += "cas[";
      out += to_string(s.insn.order);
      out += "] loc";
      num(s.insn.loc);
      out += ' ';
      num(s.insn.expected);
      out += "->";
      num(s.insn.value);
      out += s.cas_ok ? " ok" : " failed(read ";
      if (!s.cas_ok) {
        num(s.loaded);
        out += ')';
      }
      break;
    case InsnKind::kFence:
      out += "fence[";
      out += to_string(s.insn.order);
      out += ']';
      break;
  }
}

void fail(Ctx& c, std::string why) {
  if (!c.res.ok) return;
  c.res.ok = false;
  c.res.violation = std::move(why);
  c.res.trace.clear();
  c.res.trace.reserve(c.path.size());
  for (const RawStep& s : c.path) {
    WTraceStep t;
    t.proc = s.proc;
    append_step(t.what, s);
    c.res.trace.push_back(std::move(t));
  }
}

void state_key(const WState& s, std::string& k) {
  s.mem.key(k);
  auto put = [&k](std::uint8_t b) { k.push_back(static_cast<char>(b)); };
  for (const WInvocation& i : s.inv) {
    put(static_cast<std::uint8_t>(i.method));
    put(i.pc);
    put(i.arg);
    put(i.b);
    put(i.t);
    put(i.g);
    put(i.x);
    put(i.bf);
    put(i.i);
    put(i.ok);
    put(i.x2);
    put(i.result);
    put(i.result2);
  }
  for (std::uint8_t b : s.next_op) put(b);
  for (int shift = 0; shift < 64; shift += 8)
    put(static_cast<std::uint8_t>(s.claimed >> shift));
}

// The next instruction of process p (starting its next scripted method if
// idle), or false when p's script is exhausted and it is idle.
bool next_insn(const Ctx& c, const WState& s, std::size_t p, Transition& t) {
  WInvocation inv = s.inv[p];
  t.needs_start = false;
  if (inv.idle()) {
    if (s.next_op[p] >= c.scripts[p].size()) return false;
    const Op& op = c.scripts[p][s.next_op[p]];
    inv.start(op.method, op.value);
    t.needs_start = true;
  }
  t.insn = wm_peek(c.opts.machine, inv, c.opts.ablation, c.opts.batch_steals);
  t.access.proc = static_cast<std::uint8_t>(p);
  t.access.is_flush = false;
  t.access.has_loc = t.insn.kind != InsnKind::kFence;
  t.access.loc = t.insn.loc;
  t.access.write =
      t.insn.kind == InsnKind::kStore || t.insn.kind == InsnKind::kCas;
  t.access.sc = t.insn.order == MemOrder::kSeqCst;
  return true;
}

void enabled_transitions(const Ctx& c, const WState& s,
                         std::vector<Transition>& out) {
  out.clear();
  for (std::size_t p = 0; p < c.scripts.size(); ++p) {
    if (c.opts.model == MemModel::kTSO && !s.mem.buffer_empty(p)) {
      // The buffer may flush asynchronously at any moment.
      Transition f;
      f.access.proc = static_cast<std::uint8_t>(p);
      f.access.is_flush = true;
      f.access.has_loc = true;
      f.access.loc = s.mem.flush_loc(p);
      f.access.write = true;
      f.access.sc = false;
      out.push_back(f);
    }
    Transition t;
    if (!next_insn(c, s, p, t)) continue;
    const bool cas_or_fence =
        t.insn.kind == InsnKind::kCas || t.insn.kind == InsnKind::kFence;
    // A CAS / seq_cst fence / seq_cst store drains the buffer first, so
    // the instruction itself is disabled until the flushes have run.
    if (s.mem.needs_drain(p, cas_or_fence, t.insn.order)) continue;
    out.push_back(t);
  }
}

// Everything process p may still touch from this state: its in-flight
// method, every scripted method after it, and its pending buffered
// stores.
Footprint remaining_footprint(const Ctx& c, const WState& s, std::size_t p) {
  Footprint f;
  auto merge = [&f](const Footprint& g) {
    f.reads |= g.reads;
    f.writes |= g.writes;
    f.sc = f.sc || g.sc;
  };
  if (!s.inv[p].idle()) merge(wm_footprint(c.opts.machine, s.inv[p].method));
  for (std::size_t i = s.next_op[p]; i < c.scripts[p].size(); ++i)
    merge(wm_footprint(c.opts.machine, c.scripts[p][i].method));
  if (c.opts.model == MemModel::kTSO) f.writes |= s.mem.buffered_writes(p);
  return f;
}

void claim_value(Ctx& c, WState& s, std::size_t p, Method method,
                 std::uint8_t v) {
  std::string who = "P" + std::to_string(p) + " " +
                    (method == Method::kPopTop        ? "popTop"
                     : method == Method::kPopTopBatch ? "popTopBatch"
                                                      : "popBottom");
  if (v >= 64 || !(c.pushed & (1ULL << v))) {
    fail(c, who + " returned " + std::to_string(v) +
                ", a value that was never pushed");
  } else if (s.claimed & (1ULL << v)) {
    fail(c, who + " returned " + std::to_string(v) +
                " twice (exactly-once violated)");
  } else {
    s.claimed |= 1ULL << v;
  }
}

void check_retired(Ctx& c, WState& s, std::size_t p, Method method) {
  const WInvocation& inv = s.inv[p];
  if (!inv.idle()) return;  // still mid-method
  if (method == Method::kPushBottom || method == Method::kTransfer) return;
  // A batch retires up to kWBatchCap results; each is claimed separately.
  if (inv.result != kWNil) claim_value(c, s, p, method, inv.result);
  if (method == Method::kPopTopBatch && inv.result2 != kWNil)
    claim_value(c, s, p, method, inv.result2);
}

void check_terminal(Ctx& c, const WState& s) {
  ABP_ASSERT_MSG(s.mem.all_buffers_empty(),
                 "terminal state with pending store buffers");
  const std::uint64_t remaining = wm_remaining(c.opts.machine, s.mem);
  if (remaining & ~c.pushed)
    fail(c, "deque contains a value that was never pushed");
  else if (s.claimed & remaining)
    fail(c, "value both returned and still in the deque");
  else if ((s.claimed | remaining) != c.pushed)
    fail(c, "value lost: neither returned nor in the deque");
}

void dfs(Ctx& c, const WState& s, const SleepSet& sleep);

// Executes one (non-flush) instruction branch and recurses.
void run_insn_branch(Ctx& c, const WState& s, const Transition& t,
                     const SleepSet& child_sleep, Ts load_ts) {
  const std::size_t p = t.access.proc;
  WState n = s;
  if (t.needs_start) {
    const Op& op = c.scripts[p][n.next_op[p]++];
    n.inv[p].start(op.method, op.value);
  }
  const Method method = n.inv[p].method;
  RawStep step;
  step.proc = t.access.proc;
  step.insn = t.insn;
  bool cas_ok = false;
  std::uint8_t loaded = 0;
  switch (t.insn.kind) {
    case InsnKind::kLoad:
      loaded = n.mem.commit_load(p, t.insn.loc, t.insn.order, load_ts);
      break;
    case InsnKind::kStore:
      n.mem.store(p, t.insn.loc, t.insn.value, t.insn.order);
      break;
    case InsnKind::kCas: {
      const WeakMemory::CasResult r =
          n.mem.cas(p, t.insn.loc, t.insn.expected, t.insn.value,
                    t.insn.order, t.insn.failure_order);
      cas_ok = r.ok;
      loaded = r.observed;
      break;
    }
    case InsnKind::kFence:
      n.mem.fence(p, t.insn.order);
      break;
  }
  step.loaded = loaded;
  step.cas_ok = cas_ok;
  wm_advance(c.opts.machine, n.inv[p], t.insn, loaded, cas_ok,
             c.opts.ablation, c.opts.batch_steals);
  check_retired(c, n, p, method);

  ++c.res.nodes;
  if (c.res.nodes >= c.opts.max_nodes) c.res.truncated = true;
  if (!c.res.ok || c.res.truncated) return;
  c.path.push_back(step);
  dfs(c, n, child_sleep);
  c.path.pop_back();
}

void dfs(Ctx& c, const WState& s, const SleepSet& sleep) {
  if (!c.res.ok || c.res.truncated) return;
  if (c.opts.track_distinct) {
    std::string k;
    state_key(s, k);
    if (c.seen.insert(std::move(k)).second) ++c.res.distinct_states;
  }

  std::vector<Transition> enabled;
  enabled_transitions(c, s, enabled);
  if (enabled.empty()) {
    ++c.res.terminal_states;
    check_terminal(c, s);
    return;
  }

  // Singleton persistent set: if some process's whole future is
  // independent of every other process's future, its transitions alone
  // cover everything reachable from here.
  std::size_t lo = 0, hi = enabled.size();
  if (c.opts.use_dpor) {
    for (std::size_t i = 0; i < enabled.size();) {
      const std::uint8_t p = enabled[i].access.proc;
      std::size_t j = i;
      bool independent = true;
      for (; j < enabled.size() && enabled[j].access.proc == p; ++j) {
        for (std::size_t q = 0; independent && q < c.scripts.size(); ++q) {
          if (q == p) continue;
          if (conflicts(enabled[j].access, remaining_footprint(c, s, q)))
            independent = false;
        }
      }
      if (independent) {
        lo = i;
        hi = j;
        break;
      }
      i = j;
    }
  }

  SleepSet current = sleep;
  for (std::size_t i = lo; i < hi; ++i) {
    const Transition& t = enabled[i];
    if (c.opts.use_dpor &&
        current.contains(t.access.proc, t.access.is_flush)) {
      ++c.res.sleep_pruned;
      continue;
    }
    const SleepSet child = c.opts.use_dpor ? current.after(t.access)
                                           : SleepSet{};
    if (t.access.is_flush) {
      WState n = s;
      RawStep step;
      step.proc = t.access.proc;
      step.is_flush = true;
      step.flush_loc = n.mem.flush_loc(t.access.proc);
      step.loaded = 0;
      n.mem.flush_one(t.access.proc);
      step.loaded = n.mem.latest(step.flush_loc);
      ++c.res.nodes;
      if (c.res.nodes >= c.opts.max_nodes) c.res.truncated = true;
      if (!c.res.ok || c.res.truncated) return;
      c.path.push_back(step);
      dfs(c, n, child);
      c.path.pop_back();
    } else if (t.insn.kind == InsnKind::kLoad) {
      // A load branches over every message the memory model lets p read.
      c.cand.clear();
      s.mem.load_candidates(t.access.proc, t.insn.loc, t.insn.order, c.cand);
      const std::vector<Ts> candidates = c.cand;  // dfs below reuses c.cand
      for (Ts ts : candidates) {
        run_insn_branch(c, s, t, child, ts);
        if (!c.res.ok || c.res.truncated) return;
      }
    } else {
      run_insn_branch(c, s, t, child, 0);
      if (!c.res.ok || c.res.truncated) return;
    }
    if (c.opts.use_dpor) current.insert(t.access);
  }
}

}  // namespace

WExploreResult wexplore(const std::vector<Script>& scripts,
                        const WExploreOptions& opts) {
  ABP_ASSERT_MSG(scripts.size() >= 1 && scripts.size() <= kMaxProcs,
                 "1..kMaxProcs processes");
  Ctx c(scripts, opts);

  int pushes = 0;
  for (std::size_t p = 0; p < scripts.size(); ++p) {
    for (const Op& op : scripts[p]) {
      if (op.method == Method::kPushBottom) {
        ABP_ASSERT_MSG(p == 0, "only process 0 (the owner) may pushBottom");
        ABP_ASSERT_MSG(op.value < kWPoison,
                       "model values must be < 62 (62 is the poison cell)");
        ABP_ASSERT_MSG(!(c.pushed & (1ULL << op.value)),
                       "model pushes must use distinct values");
        c.pushed |= 1ULL << op.value;
        ++pushes;
      } else if (op.method == Method::kPopBottom) {
        ABP_ASSERT_MSG(p == 0, "only process 0 (the owner) may popBottom");
      } else if (op.method == Method::kTransfer) {
        ABP_ASSERT_MSG(p == 0, "only process 0 (the owner) may transfer");
        ABP_ASSERT_MSG(opts.machine == WMachine::kSplit,
                       "kTransfer is a split-machine method");
      } else if (op.method == Method::kPopTopBatch) {
        ABP_ASSERT_MSG(
            (opts.machine == WMachine::kGrowable && opts.batch_steals) ||
                opts.machine == WMachine::kSplit,
            "kPopTopBatch needs the growable machine with batch_steals "
            "armed, or the split machine");
      }
    }
  }
  // The split machine reuses cells after owner pops (its indices are
  // absolute but bounded by kSplitCap, asserted at push time inside
  // split_peek), so total pushes may exceed the live capacity; every
  // other machine's cells are write-once per script.
  const int cap = opts.machine == WMachine::kChaseLev ? kClCap
                  : opts.machine == WMachine::kAbp    ? kAbpCap
                  : opts.machine == WMachine::kSplit  ? 2 * kSplitCap
                                                      : kGrowCap1;
  ABP_ASSERT_MSG(pushes <= cap, "script pushes exceed the model capacity");

  WState initial;
  initial.mem.init(opts.model, scripts.size(), wm_initial(opts.machine),
                   !opts.weak_sc_fences);
  initial.inv.resize(scripts.size());
  initial.next_op.resize(scripts.size(), 0);

  dfs(c, initial, SleepSet{});
  return c.res;
}

std::string format_trace(const WExploreResult& result) {
  std::string out;
  if (result.ok) return out;
  out += "violation: " + result.violation + "\n";
  for (std::size_t i = 0; i < result.trace.size(); ++i) {
    out += "  ";
    if (i < 9) out += ' ';
    out += std::to_string(i + 1);
    out += ". ";
    out += result.trace[i].what;
    out += '\n';
  }
  return out;
}

}  // namespace abp::model
