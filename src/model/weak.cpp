#include "model/weak.hpp"

namespace abp::model {

const char* to_string(MemOrder order) noexcept {
  switch (order) {
    case MemOrder::kRelaxed: return "relaxed";
    case MemOrder::kAcquire: return "acquire";
    case MemOrder::kRelease: return "release";
    case MemOrder::kAcqRel: return "acq_rel";
    case MemOrder::kSeqCst: return "seq_cst";
  }
  return "?";
}

const char* to_string(MemModel model) noexcept {
  switch (model) {
    case MemModel::kSC: return "SC";
    case MemModel::kTSO: return "TSO";
    case MemModel::kRA: return "RA";
  }
  return "?";
}

void WeakMemory::init(MemModel model, std::size_t nprocs,
                      const std::vector<std::pair<Loc, std::uint8_t>>& initial,
                      bool strong_sc_fences) {
  ABP_ASSERT(nprocs <= kMaxProcs);
  model_ = model;
  strong_sc_fences_ = strong_sc_fences;
  procs_.assign(nprocs, Proc{});
  sc_view_ = View{};
  for (auto& m : msgs_) {
    m.clear();
    m.push_back(Message{});  // ts 0: initial value 0, visible to everyone
  }
  for (const auto& [loc, value] : initial) {
    ABP_ASSERT(loc < kMaxLocs);
    msgs_[loc][0].value = value;
  }
}

void WeakMemory::load_candidates(std::size_t p, Loc loc, MemOrder order,
                                 std::vector<Ts>& out) const {
  out.clear();
  const auto& history = msgs_[loc];
  if (model_ == MemModel::kTSO) {
    // Store-to-load forwarding: the newest buffered store to loc, if any,
    // otherwise the latest flushed message. Reads are never stale in TSO.
    const auto& buf = procs_[p].buffer;
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
      if (it->loc == loc) {
        out.push_back(0xff);  // sentinel: forwarded from own buffer
        return;
      }
    }
    out.push_back(static_cast<Ts>(history.size() - 1));
    return;
  }
  if (model_ == MemModel::kSC) {
    out.push_back(static_cast<Ts>(history.size() - 1));
    return;
  }
  // kRA: any message at or after the process's view; seq_cst loads are
  // additionally bounded below by the global SC view.
  Ts lb = procs_[p].view.ts[loc];
  if (order == MemOrder::kSeqCst && sc_view_.ts[loc] > lb)
    lb = sc_view_.ts[loc];
  for (Ts ts = lb; ts < history.size(); ++ts) out.push_back(ts);
}

std::uint8_t WeakMemory::commit_load(std::size_t p, Loc loc, MemOrder order,
                                     Ts ts) {
  Proc& proc = procs_[p];
  if (model_ == MemModel::kTSO) {
    if (ts == 0xff) {  // forwarded from own buffer
      const auto& buf = proc.buffer;
      for (auto it = buf.rbegin(); it != buf.rend(); ++it)
        if (it->loc == loc) return it->value;
      ABP_ASSERT_MSG(false, "forwarding sentinel without a buffered store");
    }
    return msgs_[loc][ts].value;
  }
  if (model_ == MemModel::kSC) return msgs_[loc][ts].value;

  // Weak (C11) fences: reads never enter the SC order, so an sc load
  // only honours the per-location lower bound already applied in
  // load_candidates; it neither imports nor exports the global view.
  if (strong_sc_fences_ && order == MemOrder::kSeqCst)
    proc.view.join(sc_view_);
  ABP_ASSERT(ts < msgs_[loc].size() && ts >= proc.view.ts[loc]);
  const Message& m = msgs_[loc][ts];
  if (ts > proc.view.ts[loc]) proc.view.ts[loc] = ts;
  if (acquires(order) && m.has_view) proc.view.join(m.view);
  if (strong_sc_fences_ && order == MemOrder::kSeqCst)
    sc_view_.join(proc.view);
  return m.value;
}

void WeakMemory::append_message(std::size_t p, Loc loc, std::uint8_t value,
                                MemOrder order) {
  auto& history = msgs_[loc];
  ABP_ASSERT_MSG(history.size() < 250, "model message history overflow");
  Proc& proc = procs_[p];
  const Ts ts = static_cast<Ts>(history.size());
  proc.view.ts[loc] = ts;
  proc.write_view.ts[loc] = ts;
  Message m;
  m.value = value;
  if (model_ == MemModel::kRA && releases(order)) {
    m.has_view = true;
    m.view = proc.view;  // includes the new message's own timestamp
  }
  history.push_back(std::move(m));
}

void WeakMemory::store(std::size_t p, Loc loc, std::uint8_t value,
                       MemOrder order) {
  if (model_ == MemModel::kTSO && order != MemOrder::kSeqCst) {
    procs_[p].buffer.push_back(PendingStore{loc, value});
    return;
  }
  if (model_ == MemModel::kTSO) {
    // seq_cst store: the explorer drained the buffer via flush
    // transitions; the store itself is immediately visible (store+mfence).
    ABP_ASSERT_MSG(buffer_empty(p), "seq_cst store with a non-empty buffer");
  }
  if (model_ == MemModel::kRA && order == MemOrder::kSeqCst &&
      strong_sc_fences_)
    procs_[p].view.join(sc_view_);
  append_message(p, loc, value, order);
  if (model_ == MemModel::kRA && order == MemOrder::kSeqCst) {
    if (strong_sc_fences_) {
      sc_view_.join(procs_[p].view);
    } else if (latest_ts(loc) > sc_view_.ts[loc]) {
      // C11 p5: an sc write enters the SC order at its own location only.
      sc_view_.ts[loc] = latest_ts(loc);
    }
  }
}

WeakMemory::CasResult WeakMemory::cas(std::size_t p, Loc loc,
                                      std::uint8_t expected,
                                      std::uint8_t desired, MemOrder success,
                                      MemOrder failure) {
  if (model_ == MemModel::kTSO)
    ABP_ASSERT_MSG(buffer_empty(p), "CAS with a non-empty store buffer");
  Proc& proc = procs_[p];
  auto& history = msgs_[loc];
  const Ts latest = static_cast<Ts>(history.size() - 1);
  // RMWs always read the latest message: atomicity leaves no room for a
  // stale read-modify-write.
  const Message read = history[latest];
  if (read.value != expected) {
    // Failure path is a plain load of the latest message.
    if (model_ == MemModel::kRA) {
      if (failure == MemOrder::kSeqCst && strong_sc_fences_)
        proc.view.join(sc_view_);
      if (latest > proc.view.ts[loc]) proc.view.ts[loc] = latest;
      if (acquires(failure) && read.has_view) proc.view.join(read.view);
      if (failure == MemOrder::kSeqCst && strong_sc_fences_)
        sc_view_.join(proc.view);
    }
    return {false, read.value};
  }
  if (model_ == MemModel::kRA) {
    if (success == MemOrder::kSeqCst && strong_sc_fences_)
      proc.view.join(sc_view_);
    if (latest > proc.view.ts[loc]) proc.view.ts[loc] = latest;
    if (acquires(success) && read.has_view) proc.view.join(read.view);
  }
  const Ts ts = static_cast<Ts>(history.size());
  ABP_ASSERT_MSG(history.size() < 250, "model message history overflow");
  proc.view.ts[loc] = ts;
  proc.write_view.ts[loc] = ts;
  Message m;
  m.value = desired;
  if (model_ == MemModel::kRA) {
    // Release-sequence continuation: the RMW's message inherits the view
    // of the message it replaced, so acquire readers still synchronize
    // with the original release store even through relaxed RMWs.
    if (read.has_view) {
      m.has_view = true;
      m.view = read.view;
    }
    if (releases(success)) {
      m.has_view = true;
      m.view.join(proc.view);
    }
  }
  history.push_back(std::move(m));
  if (model_ == MemModel::kRA && success == MemOrder::kSeqCst) {
    if (strong_sc_fences_) {
      sc_view_.join(proc.view);
    } else if (ts > sc_view_.ts[loc]) {
      // C11 p5: the sc RMW enters the SC order at its own location only.
      sc_view_.ts[loc] = ts;
    }
  }
  return {true, read.value};
}

void WeakMemory::fence(std::size_t p, MemOrder order) {
  ABP_ASSERT_MSG(order == MemOrder::kSeqCst,
                 "only seq_cst fences are modeled (the deques use no other)");
  if (model_ == MemModel::kTSO) {
    ABP_ASSERT_MSG(buffer_empty(p), "seq_cst fence with a non-empty buffer");
    return;
  }
  if (model_ == MemModel::kRA) {
    // Import first, then export. Strong (C++20) fences publish the whole
    // view — reads included; weak (C11) fences publish only the thread's
    // own writes, which is exactly the read-coherence hole P0668 closed.
    procs_[p].view.join(sc_view_);
    sc_view_.join(strong_sc_fences_ ? procs_[p].view
                                    : procs_[p].write_view);
  }
}

void WeakMemory::flush_one(std::size_t p) {
  auto& buf = procs_[p].buffer;
  ABP_ASSERT(!buf.empty());
  const PendingStore s = buf.front();
  buf.erase(buf.begin());
  append_message(p, s.loc, s.value, MemOrder::kRelaxed);
}

bool WeakMemory::all_buffers_empty() const noexcept {
  for (const Proc& proc : procs_)
    if (!proc.buffer.empty()) return false;
  return true;
}

void WeakMemory::key(std::string& out) const {
  auto put = [&out](std::uint8_t b) { out.push_back(static_cast<char>(b)); };
  for (Loc loc = 0; loc < kMaxLocs; ++loc) {
    put(static_cast<std::uint8_t>(msgs_[loc].size()));
    for (const Message& m : msgs_[loc]) {
      put(m.value);
      put(m.has_view ? 1 : 0);
      if (m.has_view)
        for (Ts t : m.view.ts) put(t);
    }
  }
  for (const Proc& proc : procs_) {
    for (Ts t : proc.view.ts) put(t);
    // write_view is live state only under the weak fence semantics;
    // including it unconditionally would split equivalent strong states.
    if (!strong_sc_fences_)
      for (Ts t : proc.write_view.ts) put(t);
    put(static_cast<std::uint8_t>(proc.buffer.size()));
    for (const PendingStore& s : proc.buffer) {
      put(s.loc);
      put(s.value);
    }
  }
  for (Ts t : sc_view_.ts) put(t);
}

}  // namespace abp::model
