#pragma once

// Linearizability checking for the relaxed deque semantics (§3.2).
//
// The paper's specification: a set of invocations meets the *ideal*
// semantics if each invocation can be assigned a linearization point
// between its initiation and completion such that the return values are
// consistent with a serial deque execution in linearization order. The
// *relaxed* semantics weaken exactly one case: a popTop may return NIL
// if, at some point during the invocation, the deque was empty or the
// topmost item was removed by another process. Since a NIL-returning
// popTop does not modify shared memory, the paper treats the remaining
// invocations — all owner operations and every successful popTop — as the
// ones that must be linearizable (§3.3, last paragraph).
//
// check_relaxed_linearizable() therefore takes a complete history of
// invocations with their (start, end) instruction timestamps and results,
// drops NIL-returning popTops, and searches (Wing & Gong-style
// backtracking over real-time-minimal candidates, memoized on
// (linearized-set, deque-state)) for a witness ordering.

#include <cstdint>
#include <vector>

#include "model/explorer.hpp"
#include "model/machine.hpp"

namespace abp::model {

struct HistoryEvent {
  Method method = Method::kIdle;
  std::uint8_t arg = 0;     // pushBottom argument
  std::uint8_t result = SharedDeque::kEmptySlot;  // pops; kEmptySlot = NIL
  std::uint64_t start = 0;  // global instruction index of the first step
  std::uint64_t end = 0;    // global instruction index of the last step
};

// True iff the successful sub-history is linearizable against a serial
// deque (pushes at the bottom, popBottom from the back — NIL on empty —
// popTop from the front).
bool check_relaxed_linearizable(std::vector<HistoryEvent> history);

// Convenience: runs the instruction-level ABP machine on `scripts` under a
// pseudo-random interleaving (seeded), records the history, and returns
// whether it is relaxed-linearizable. `disable_tag` reproduces the ABA
// ablation.
bool random_execution_is_linearizable(const std::vector<Script>& scripts,
                                      std::uint64_t seed,
                                      bool disable_tag = false);

}  // namespace abp::model
