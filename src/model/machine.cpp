#include "model/machine.hpp"

#include "support/assert.hpp"

namespace abp::model {

namespace {

constexpr std::uint8_t kNil = SharedDeque::kEmptySlot;

}  // namespace

// Program counters follow Figure 5's line structure; local-only
// instructions are folded into the adjacent shared-memory instruction
// (local instructions commute with other processes' steps, §3.4, so the
// interleaving semantics are unchanged).
StepOutcome step_abp(SharedDeque& mem, Invocation& inv,
                     bool disable_tag) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0:  // load localBot <- bot
          inv.local_bot = mem.bot;
          inv.pc = 1;
          return StepOutcome::kRunning;
        case 1:  // store node -> deq[localBot]
          ABP_ASSERT_MSG(inv.local_bot < SharedDeque::kCapacity,
                         "model deque overflow");
          mem.deq[inv.local_bot] = inv.arg;
          inv.pc = 2;
          return StepOutcome::kRunning;
        case 2:  // store localBot + 1 -> bot
          mem.bot = static_cast<std::uint8_t>(inv.local_bot + 1);
          inv.method = Method::kIdle;
          return StepOutcome::kDone;
        default: break;
      }
      break;

    case Method::kPopTop:
      switch (inv.pc) {
        case 0:  // load oldAge <- age
          inv.old_top = mem.top;
          inv.old_tag = mem.tag;
          inv.pc = 1;
          return StepOutcome::kRunning;
        case 1:  // load localBot <- bot; if localBot <= oldAge.top: NIL
          inv.local_bot = mem.bot;
          if (inv.local_bot <= inv.old_top) {
            inv.result = kNil;
            inv.method = Method::kIdle;
            return StepOutcome::kDone;
          }
          inv.pc = 2;
          return StepOutcome::kRunning;
        case 2:  // load node <- deq[oldAge.top]
          inv.node = mem.deq[inv.old_top];
          inv.pc = 3;
          return StepOutcome::kRunning;
        case 3:  // cas(age, oldAge, (oldAge.tag, oldAge.top + 1))
          if (mem.top == inv.old_top && mem.tag == inv.old_tag) {
            mem.top = static_cast<std::uint8_t>(inv.old_top + 1);
            inv.result = inv.node;
          } else {
            inv.result = kNil;
          }
          inv.method = Method::kIdle;
          return StepOutcome::kDone;
        default: break;
      }
      break;

    case Method::kPopBottom:
      switch (inv.pc) {
        case 0:  // load localBot <- bot; if 0: NIL
          inv.local_bot = mem.bot;
          if (inv.local_bot == 0) {
            inv.result = kNil;
            inv.method = Method::kIdle;
            return StepOutcome::kDone;
          }
          inv.pc = 1;
          return StepOutcome::kRunning;
        case 1:  // localBot--; store localBot -> bot
          --inv.local_bot;
          mem.bot = inv.local_bot;
          inv.pc = 2;
          return StepOutcome::kRunning;
        case 2:  // load node <- deq[localBot]
          inv.node = mem.deq[inv.local_bot];
          inv.pc = 3;
          return StepOutcome::kRunning;
        case 3:  // load oldAge <- age; if localBot > oldAge.top: return node
          inv.old_top = mem.top;
          inv.old_tag = mem.tag;
          if (inv.local_bot > inv.old_top) {
            inv.result = inv.node;
            inv.method = Method::kIdle;
            return StepOutcome::kDone;
          }
          inv.new_top = 0;
          inv.new_tag = disable_tag
                            ? inv.old_tag
                            : static_cast<std::uint8_t>(inv.old_tag + 1);
          inv.pc = 4;
          return StepOutcome::kRunning;
        case 4:  // store 0 -> bot
          mem.bot = 0;
          inv.pc = 5;
          return StepOutcome::kRunning;
        case 5:  // if localBot == oldAge.top: cas(age, oldAge, newAge)
          if (inv.local_bot == inv.old_top && mem.top == inv.old_top &&
              mem.tag == inv.old_tag) {
            mem.top = inv.new_top;
            mem.tag = inv.new_tag;
            inv.result = inv.node;  // won the race for the last item
            inv.method = Method::kIdle;
            return StepOutcome::kDone;
          }
          inv.pc = 6;
          return StepOutcome::kRunning;
        case 6:  // store newAge -> age; return NIL
          mem.top = inv.new_top;
          mem.tag = inv.new_tag;
          inv.result = kNil;
          inv.method = Method::kIdle;
          return StepOutcome::kDone;
        default: break;
      }
      break;

    case Method::kPopTopBatch:  // weak growable machine only
    case Method::kTransfer:     // weak split machine only
    case Method::kIdle:
      break;
  }
  ABP_ASSERT_MSG(false, "step_abp: invalid machine state");
  return StepOutcome::kDone;
}

// Spinlock-guarded deque: lock (spin), one combined critical-section step,
// unlock. The spin at pc 0 is the blocking behaviour the paper excludes.
StepOutcome step_spin(SharedDeque& mem, Invocation& inv) {
  ABP_ASSERT(inv.method != Method::kIdle);
  switch (inv.pc) {
    case 0:  // test-and-set
      if (mem.lock != 0) return StepOutcome::kBlockedLoop;  // spin
      mem.lock = 1;
      inv.pc = 1;
      return StepOutcome::kRunning;
    case 1:  // critical section (single step: the op on the sequential deque)
      switch (inv.method) {
        case Method::kPushBottom:
          ABP_ASSERT_MSG(mem.bot < SharedDeque::kCapacity,
                         "model deque overflow");
          mem.deq[mem.bot] = inv.arg;
          ++mem.bot;
          break;
        case Method::kPopBottom:
          if (mem.bot == mem.top) {
            inv.result = kNil;
          } else {
            --mem.bot;
            inv.result = mem.deq[mem.bot];
            if (mem.bot == mem.top) {
              mem.bot = 0;
              mem.top = 0;
            }
          }
          break;
        case Method::kPopTop:
          if (mem.bot == mem.top) {
            inv.result = kNil;
          } else {
            inv.result = mem.deq[mem.top];
            ++mem.top;
            if (mem.bot == mem.top) {
              mem.bot = 0;
              mem.top = 0;
            }
          }
          break;
        case Method::kPopTopBatch:
          ABP_ASSERT_MSG(false, "batch steal not modeled by the spin machine");
          break;
        case Method::kTransfer:
          ABP_ASSERT_MSG(false, "transfer not modeled by the spin machine");
          break;
        case Method::kIdle:
          break;
      }
      inv.pc = 2;
      return StepOutcome::kRunning;
    case 2:  // unlock
      mem.lock = 0;
      inv.method = Method::kIdle;
      return StepOutcome::kDone;
    default:
      break;
  }
  ABP_ASSERT_MSG(false, "step_spin: invalid machine state");
  return StepOutcome::kDone;
}

}  // namespace abp::model
