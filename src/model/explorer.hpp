#pragma once

// Exhaustive interleaving explorer for the deque state machines.
//
// Given one script of operations per process (a "good" set: only process 0
// performs pushBottom / popBottom, matching the work stealer's usage), the
// explorer enumerates every state reachable under an adversarial scheduler
// that may interleave the processes' instructions arbitrarily and checks:
//
//   1. Exactly-once delivery — no pushed value is ever returned by two
//      different (or the same) pop invocations. (This is where the age
//      tag earns its keep: remove the tag bump and the explorer finds the
//      ABA duplicate, see tests/test_model.cpp.)
//   2. Conservation — in every terminal (quiescent) state, the values
//      returned by pops plus the values still in the deque are exactly
//      the values pushed.
//   3. Non-blockingness — from every reachable state, every in-flight
//      invocation run *solo* (all other processes suspended forever, the
//      kernel-adversary worst case) completes within a bounded number of
//      steps. The ABP machine passes (its methods are loop-free); the
//      spinlock machine fails as soon as any state has one process
//      suspended inside its critical section.
//
// This mechanizes, at model scale, the interleaving case analysis the
// paper defers to the verification report [11], plus the non-blocking
// property (§1, §3) itself.

#include <cstdint>
#include <string>
#include <vector>

#include "model/machine.hpp"

namespace abp::model {

struct Op {
  Method method;
  std::uint8_t value = 0;  // pushBottom argument
};

using Script = std::vector<Op>;

struct ExploreOptions {
  bool use_spinlock = false;      // step_spin instead of step_abp
  bool check_nonblocking = true;  // solo-completion from every state
  bool disable_tag = false;       // ablation: freeze the age tag (ABA bug)
  int solo_step_limit = 64;
  std::size_t max_states = 5'000'000;
};

struct ExploreResult {
  std::size_t states = 0;           // distinct states explored
  std::size_t transitions = 0;
  std::size_t terminal_states = 0;
  bool ok = true;                   // no violation found
  std::string violation;            // description of the first violation
  bool nonblocking = true;          // property 3
  int max_solo_steps = 0;           // worst-case solo completion length
  bool truncated = false;           // hit max_states

  // A truncated exploration proves nothing: `ok` only means "no
  // violation in the states visited". Callers asserting correctness
  // must check passed(), never ok alone (when truncated, `violation`
  // also carries a loud explanation so `<< r.violation` shows it).
  bool passed() const noexcept { return ok && !truncated; }
};

ExploreResult explore(const std::vector<Script>& scripts,
                      const ExploreOptions& options = {});

}  // namespace abp::model
