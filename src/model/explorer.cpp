#include "model/explorer.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "support/assert.hpp"

namespace abp::model {

namespace {

constexpr std::uint8_t kNil = SharedDeque::kEmptySlot;

struct SysState {
  SharedDeque mem;
  std::vector<Invocation> inv;
  std::vector<std::uint8_t> next_op;
  std::uint64_t claimed = 0;  // bitmask of values already returned by a pop

  std::string key() const {
    std::string k;
    k.reserve(16 + inv.size() * 12);
    auto put = [&k](std::uint8_t b) { k.push_back(static_cast<char>(b)); };
    put(mem.top);
    put(mem.tag);
    put(mem.bot);
    put(mem.lock);
    for (std::uint8_t b : mem.deq) put(b);
    for (const Invocation& i : inv) {
      put(static_cast<std::uint8_t>(i.method));
      put(i.pc);
      put(i.arg);
      put(i.local_bot);
      put(i.old_top);
      put(i.old_tag);
      put(i.new_top);
      put(i.new_tag);
      put(i.node);
      put(i.result);
    }
    for (std::uint8_t b : next_op) put(b);
    for (int shift = 0; shift < 64; shift += 8)
      put(static_cast<std::uint8_t>(claimed >> shift));
    return k;
  }
};

StepOutcome do_step(SysState& s, std::size_t p, const ExploreOptions& opts) {
  return opts.use_spinlock ? step_spin(s.mem, s.inv[p])
                           : step_abp(s.mem, s.inv[p], opts.disable_tag);
}

// Runs process p alone until its invocation completes; returns the number
// of steps, or -1 if it fails to complete within the limit (blocking).
int solo_completion_steps(SysState s, std::size_t p,
                          const ExploreOptions& opts) {
  int steps = 0;
  while (!s.inv[p].idle()) {
    if (steps >= opts.solo_step_limit) return -1;
    do_step(s, p, opts);
    ++steps;
  }
  return steps;
}

}  // namespace

ExploreResult explore(const std::vector<Script>& scripts,
                      const ExploreOptions& opts) {
  ExploreResult result;

  // Collect (and sanity-check) the pushed values.
  std::uint64_t pushed = 0;
  for (std::size_t p = 0; p < scripts.size(); ++p) {
    for (const Op& op : scripts[p]) {
      if (op.method == Method::kPushBottom) {
        ABP_ASSERT_MSG(p == 0, "only process 0 (the owner) may pushBottom");
        ABP_ASSERT_MSG(op.value < 64, "model values must be < 64");
        ABP_ASSERT_MSG(!(pushed & (1ULL << op.value)),
                       "model pushes must use distinct values");
        pushed |= 1ULL << op.value;
      } else if (op.method == Method::kPopBottom) {
        ABP_ASSERT_MSG(p == 0, "only process 0 (the owner) may popBottom");
      }
    }
  }

  SysState initial;
  initial.inv.resize(scripts.size());
  initial.next_op.resize(scripts.size(), 0);

  std::unordered_set<std::string> visited;
  std::deque<SysState> frontier;
  visited.insert(initial.key());
  frontier.push_back(std::move(initial));

  auto fail = [&](std::string why) {
    if (result.ok) {
      result.ok = false;
      result.violation = std::move(why);
    }
  };

  while (!frontier.empty() && result.ok) {
    if (visited.size() > opts.max_states) {
      result.truncated = true;
      // Not a verdict: make sure a caller that prints `violation` on
      // failure sees why `passed()` is false even though ok is true.
      result.violation =
          "exploration truncated at max_states = " +
          std::to_string(opts.max_states) +
          " — the state space was NOT exhausted; no verdict";
      break;
    }
    SysState state = std::move(frontier.front());
    frontier.pop_front();
    ++result.states;

    bool any_transition = false;
    for (std::size_t p = 0; p < scripts.size(); ++p) {
      SysState next = state;
      if (next.inv[p].idle()) {
        if (next.next_op[p] >= scripts[p].size()) continue;
        const Op& op = scripts[p][next.next_op[p]++];
        next.inv[p].start(op.method, op.value);
        // Fold the start (purely local) into the first instruction.
      }
      const StepOutcome outcome = do_step(next, p, opts);
      ++result.transitions;
      any_transition = true;

      if (outcome == StepOutcome::kDone) {
        const Invocation& done = next.inv[p];
        // Note: start() reset the invocation, so read the completed result
        // before it is reused; Invocation stays until the next start.
        if (done.result != kNil &&
            (done.method == Method::kIdle)) {  // a pop completed
          const std::uint8_t v = done.result;
          if (v >= 64 || !(pushed & (1ULL << v))) {
            fail("pop returned a value that was never pushed");
          } else if (next.claimed & (1ULL << v)) {
            fail("value returned twice (exactly-once violated)");
          } else {
            next.claimed |= 1ULL << v;
          }
        }
      }

      if (!result.ok) break;
      auto [it, inserted] = visited.insert(next.key());
      (void)it;
      if (!inserted) continue;

      // Non-blocking check on the new state.
      if (opts.check_nonblocking) {
        for (std::size_t q = 0; q < scripts.size(); ++q) {
          if (next.inv[q].idle()) continue;
          const int steps = solo_completion_steps(next, q, opts);
          if (steps < 0) {
            result.nonblocking = false;
          } else {
            result.max_solo_steps = std::max(result.max_solo_steps, steps);
          }
        }
      }
      frontier.push_back(std::move(next));
    }

    if (!any_transition) {
      // Terminal (quiescent) state: conservation check.
      ++result.terminal_states;
      std::uint64_t remaining = 0;
      for (std::uint8_t i = state.mem.top; i < state.mem.bot; ++i) {
        const std::uint8_t v = state.mem.deq[i];
        if (v == kNil || v >= 64 || !(pushed & (1ULL << v))) {
          fail("deque contains a value that was never pushed");
          break;
        }
        if (remaining & (1ULL << v)) {
          fail("deque contains a value twice");
          break;
        }
        remaining |= 1ULL << v;
      }
      if (result.ok) {
        if ((state.claimed & remaining) != 0)
          fail("value both returned and still in the deque");
        else if ((state.claimed | remaining) != pushed)
          fail("value lost: neither returned nor in the deque");
      }
    }
  }

  return result;
}

}  // namespace abp::model
