#pragma once

// Instruction-level state machines for deque implementations.
//
// The paper's correctness argument for the deque (§3.3) is deferred to a
// separate verification report [Blumofe, Plaxton, Ray, TR-99-11], which
// "reduces the problem to establishing the correctness of a rather large
// number of sequential program fragments" — i.e. it reasons about every
// possible interleaving of the owner's and thieves' instructions. This
// module mechanizes that argument in miniature: each deque method is
// compiled into an explicit program-counter machine in which every shared
// load / store / CAS is one atomic step, and src/model/explorer.hpp
// exhaustively explores the interleavings an adversarial kernel could
// produce.
//
// Two machines are provided:
//   * AbpMachine   — Figure 5, line by line (loop-free: each invocation is
//                    a bounded straight-line sequence, which is what makes
//                    the implementation non-blocking);
//   * SpinMachine  — the same deque guarded by a test-and-set spinlock,
//                    whose lock() loop is exactly the blocking behaviour
//                    the paper bans (a preempted lock holder leaves the
//                    spinning process stuck forever).

#include <array>
#include <cstdint>
#include <optional>

namespace abp::model {

// Shared memory of one deque instance. Small fixed capacity keeps state
// spaces enumerable; values are small non-negative integers and kEmptySlot
// marks never-written array cells.
struct SharedDeque {
  static constexpr std::size_t kCapacity = 6;
  static constexpr std::uint8_t kEmptySlot = 0xff;

  // ABP fields (Figure 4).
  std::uint8_t top = 0;
  std::uint8_t tag = 0;
  std::uint8_t bot = 0;
  std::array<std::uint8_t, kCapacity> deq{};

  // Spinlock field (SpinMachine only).
  std::uint8_t lock = 0;

  SharedDeque() { deq.fill(kEmptySlot); }

  bool operator==(const SharedDeque&) const = default;
};

// kPopTopBatch (the steal-half claim of DESIGN.md §12) is implemented
// only by the growable *weak* machine; the SC machines of this header
// reject it.
enum class Method : std::uint8_t {
  kPushBottom,
  kPopBottom,
  kPopTop,
  kPopTopBatch,
  // kTransfer (the split deque's owner-driven publish of the private
  // segment) exists only on the split *weak* machine; the SC machines
  // and the other weak machines reject it.
  kTransfer,
  kIdle,
};

enum class StepOutcome : std::uint8_t {
  kRunning,   // took a step, invocation still in flight
  kDone,      // invocation completed this step
  kBlockedLoop,  // took a step but looped back (spinlock only)
};

// One in-flight method invocation, advanced one shared-memory instruction
// at a time. Registers (private variables of Figure 5) live here.
struct Invocation {
  Method method = Method::kIdle;
  std::uint8_t pc = 0;
  // registers
  std::uint8_t arg = 0;        // pushBottom argument
  std::uint8_t local_bot = 0;
  std::uint8_t old_top = 0, old_tag = 0;
  std::uint8_t new_top = 0, new_tag = 0;
  std::uint8_t node = 0;
  // result of a completed pop (kEmptySlot encodes NIL)
  std::uint8_t result = SharedDeque::kEmptySlot;

  bool operator==(const Invocation&) const = default;

  void start(Method m, std::uint8_t argument = 0) {
    *this = Invocation{};
    method = m;
    arg = argument;
  }
  bool idle() const noexcept { return method == Method::kIdle; }
};

// Advances `inv` by one instruction against `mem`, Figure 5 semantics.
// `disable_tag` freezes the age tag (popBottom's reset keeps the old tag):
// the ablation that re-introduces the ABA bug the tag exists to prevent.
StepOutcome step_abp(SharedDeque& mem, Invocation& inv,
                     bool disable_tag = false);

// Same operations via a test-and-set spinlock (lock; do op; unlock).
StepOutcome step_spin(SharedDeque& mem, Invocation& inv);

// Upper bound on the number of steps a single ABP invocation can take —
// the machine is loop-free, so this is a small constant (wait-free per
// invocation; the *algorithm* is non-blocking because a failed popTop
// retries at the scheduler level, not inside the method).
inline constexpr int kAbpMaxSteps = 16;

}  // namespace abp::model
