#include "model/weak_machine.hpp"

#include "support/assert.hpp"

namespace abp::model {

namespace {

// Shared-location layout (all machines fit in kMaxLocs = 16):
//   0  age     — ABP/growable packed (tag << 4) | top;
//                split packed (tag:4 | top:2 | split:2) shared word
//   1  bot     — ABP/growable bottom; Chase-Lev bottom counter;
//                split packed (bottom:2 | split:2) owner word
//   2  top     — Chase-Lev top counter; split hunger flag
//   3  bufptr  — growable buffer id (0 or 1)
//   4+ cells   — ABP: 4+i (cap 6); Chase-Lev: 4+(i&3) (ring of 4);
//                growable: buffer 0 at 4+i (cap 2), buffer 1 at 8+i (cap 6);
//                split: 4+i (cap 3)
constexpr Loc kLocAge = 0;
constexpr Loc kLocBot = 1;
constexpr Loc kLocTop = 2;
constexpr Loc kLocBuf = 3;
constexpr Loc kLocCell = 4;

constexpr std::uint8_t pack_age(std::uint8_t tag, std::uint8_t top) noexcept {
  return static_cast<std::uint8_t>((tag << 4) | (top & 0x0f));
}
constexpr std::uint8_t top_of(std::uint8_t age) noexcept { return age & 0x0f; }
constexpr std::uint8_t tag_of(std::uint8_t age) noexcept { return age >> 4; }

constexpr Loc abp_cell(std::uint8_t i) noexcept {
  return static_cast<Loc>(kLocCell + i);
}
constexpr Loc cl_cell(std::uint8_t i) noexcept {
  return static_cast<Loc>(kLocCell + (i & (kClCap - 1)));
}
constexpr Loc grow_cell(std::uint8_t buf, std::uint8_t i) noexcept {
  return static_cast<Loc>(buf == 0 ? kLocCell + i : kLocCell + 4 + i);
}

// Split packing. Indices are absolute (never masked: scripts stay below
// kSplitCap), 2 bits each, leaving a 4-bit tag — wide enough that the
// safe machine's word cannot recur within any scripted history.
constexpr std::uint8_t pack_ts(std::uint8_t tag, std::uint8_t top,
                               std::uint8_t split) noexcept {
  return static_cast<std::uint8_t>((tag << 4) | ((top & 3) << 2) |
                                   (split & 3));
}
constexpr std::uint8_t ts_tag(std::uint8_t w) noexcept { return w >> 4; }
constexpr std::uint8_t ts_top(std::uint8_t w) noexcept { return (w >> 2) & 3; }
constexpr std::uint8_t ts_split(std::uint8_t w) noexcept { return w & 3; }
constexpr std::uint8_t pack_spb(std::uint8_t b, std::uint8_t s) noexcept {
  return static_cast<std::uint8_t>(((b & 3) << 2) | (s & 3));
}
constexpr std::uint8_t spb_b(std::uint8_t w) noexcept { return (w >> 2) & 3; }
constexpr std::uint8_t spb_s(std::uint8_t w) noexcept { return w & 3; }
constexpr Loc split_cell(std::uint8_t i) noexcept {
  return static_cast<Loc>(kLocCell + i);
}

// ATOMICS-LINT-TABLE-BEGIN
// Declared memory_order of every shared access, indexed by Site. The
// site string doubles as the `// model-site:` anchor in src/deque;
// tools/atomics_lint.py compares each anchored source line's
// memory_order against this table (drift = lint failure).
constexpr OrderSpec kOrderTable[] = {
    {"abp.push_bottom.bottom_load", MemOrder::kRelaxed},
    {"abp.push_bottom.item_store", MemOrder::kRelaxed},
    {"abp.push_bottom.bottom_store", MemOrder::kRelease},
    {"abp.pop_top.age_load", MemOrder::kAcquire},
    {"abp.pop_top.bottom_load", MemOrder::kAcquire},
    {"abp.pop_top.item_load", MemOrder::kRelaxed},
    {"abp.pop_top.cas", MemOrder::kSeqCst},
    {"abp.pop_bottom.bottom_load", MemOrder::kRelaxed},
    {"abp.pop_bottom.bottom_store", MemOrder::kSeqCst},
    {"abp.pop_bottom.item_load", MemOrder::kRelaxed},
    {"abp.pop_bottom.age_load", MemOrder::kSeqCst},
    {"abp.pop_bottom.bottom_reset", MemOrder::kRelaxed},
    {"abp.pop_bottom.cas", MemOrder::kSeqCst},
    {"abp.pop_bottom.age_store", MemOrder::kRelease},
    {"growable.push_bottom.bottom_load", MemOrder::kRelaxed},
    {"growable.push_bottom.buffer_load", MemOrder::kRelaxed},
    {"growable.grow.age_load", MemOrder::kRelaxed},
    {"growable.grow.item_load", MemOrder::kRelaxed},
    {"growable.grow.item_store", MemOrder::kRelaxed},
    {"growable.grow.publish", MemOrder::kRelease},
    {"growable.push_bottom.item_store", MemOrder::kRelaxed},
    {"growable.push_bottom.bottom_store", MemOrder::kRelease},
    {"growable.pop_top.age_load", MemOrder::kAcquire},
    {"growable.pop_top.bottom_load", MemOrder::kAcquire},
    {"growable.pop_top.buffer_load", MemOrder::kAcquire},
    {"growable.pop_top.item_load", MemOrder::kRelaxed},
    {"growable.pop_top.cas", MemOrder::kSeqCst},
    {"growable.pop_bottom.bottom_load", MemOrder::kRelaxed},
    {"growable.pop_bottom.bottom_store", MemOrder::kSeqCst},
    {"growable.pop_bottom.buffer_load", MemOrder::kRelaxed},
    {"growable.pop_bottom.item_load", MemOrder::kRelaxed},
    {"growable.pop_bottom.age_load", MemOrder::kSeqCst},
    {"growable.pop_bottom.bottom_reset", MemOrder::kRelaxed},
    {"growable.pop_bottom.cas", MemOrder::kSeqCst},
    {"growable.pop_bottom.age_store", MemOrder::kRelease},
    {"growable.pop_top_batch.age_load", MemOrder::kAcquire},
    {"growable.pop_top_batch.bottom_load", MemOrder::kSeqCst},
    {"growable.pop_top_batch.buffer_load", MemOrder::kAcquire},
    {"growable.pop_top_batch.item_load", MemOrder::kRelaxed},
    {"growable.pop_top_batch.cas", MemOrder::kSeqCst},
    {"growable.pop_bottom.defend_cas", MemOrder::kSeqCst},
    {"chase_lev.push_bottom.bottom_load", MemOrder::kRelaxed},
    {"chase_lev.push_bottom.top_load", MemOrder::kAcquire},
    {"chase_lev.push_bottom.item_store", MemOrder::kRelaxed},
    {"chase_lev.push_bottom.bottom_store", MemOrder::kRelease},
    {"chase_lev.pop_bottom.bottom_load", MemOrder::kRelaxed},
    {"chase_lev.pop_bottom.bottom_store", MemOrder::kRelease},
    {"chase_lev.pop_bottom.fence", MemOrder::kSeqCst},
    {"chase_lev.pop_bottom.top_load", MemOrder::kRelaxed},
    {"chase_lev.pop_bottom.bottom_restore", MemOrder::kRelease},
    {"chase_lev.pop_bottom.item_load", MemOrder::kRelaxed},
    {"chase_lev.pop_bottom.cas", MemOrder::kSeqCst},
    {"chase_lev.pop_bottom.bottom_reset", MemOrder::kRelease},
    {"chase_lev.pop_top.top_load", MemOrder::kAcquire},
    {"chase_lev.pop_top.fence", MemOrder::kSeqCst},
    {"chase_lev.pop_top.bottom_load", MemOrder::kAcquire},
    {"chase_lev.pop_top.item_load", MemOrder::kRelaxed},
    {"chase_lev.pop_top.cas", MemOrder::kSeqCst},
    {"split.push_bottom.pb_load", MemOrder::kRelaxed},
    {"split.push_bottom.ts_refresh", MemOrder::kRelaxed},
    {"split.push_bottom.item_store", MemOrder::kRelaxed},
    {"split.push_bottom.pb_store", MemOrder::kRelaxed},
    {"split.push_bottom.hunger_load", MemOrder::kRelaxed},
    {"split.transfer.pb_load", MemOrder::kRelaxed},
    {"split.transfer.hunger_clear", MemOrder::kRelaxed},
    {"split.transfer.ts_load", MemOrder::kRelaxed},
    {"split.transfer.publish_cas", MemOrder::kRelease},
    {"split.transfer.pb_store", MemOrder::kRelaxed},
    {"split.pop_bottom.pb_load", MemOrder::kRelaxed},
    {"split.pop_bottom.pb_store", MemOrder::kRelaxed},
    {"split.pop_bottom.item_load", MemOrder::kRelaxed},
    {"split.reclaim.ts_load", MemOrder::kRelaxed},
    {"split.reclaim.shrink_cas", MemOrder::kRelaxed},
    {"split.pop_top.ts_load", MemOrder::kAcquire},
    {"split.pop_top.item_load", MemOrder::kRelaxed},
    {"split.pop_top.hunger_store", MemOrder::kRelaxed},
    {"split.pop_top.claim_cas", MemOrder::kRelease},
    {"split.pop_top_batch.ts_load", MemOrder::kAcquire},
    {"split.pop_top_batch.item_load", MemOrder::kRelaxed},
    {"split.pop_top_batch.hunger_store", MemOrder::kRelaxed},
    {"split.pop_top_batch.claim_cas", MemOrder::kRelease},
};
// ATOMICS-LINT-TABLE-END

static_assert(sizeof(kOrderTable) / sizeof(kOrderTable[0]) ==
              static_cast<std::size_t>(Site::kSiteCount));

Insn load(Site s, Loc loc) {
  return Insn{InsnKind::kLoad, loc, order_spec(s).order, MemOrder::kRelaxed,
              0, 0, s};
}
Insn store(Site s, Loc loc, std::uint8_t v) {
  return Insn{InsnKind::kStore, loc, order_spec(s).order, MemOrder::kRelaxed,
              v, 0, s};
}
Insn cas(Site s, Loc loc, std::uint8_t expected, std::uint8_t desired) {
  return Insn{InsnKind::kCas, loc, order_spec(s).order, MemOrder::kRelaxed,
              desired, expected, s};
}
Insn fence(Site s) {
  return Insn{InsnKind::kFence, 0, order_spec(s).order, MemOrder::kRelaxed,
              0, 0, s};
}

void retire(WInvocation& inv, std::uint8_t result) {
  inv.method = Method::kIdle;
  inv.result = result;
}

void retire2(WInvocation& inv, std::uint8_t result, std::uint8_t result2) {
  inv.method = Method::kIdle;
  inv.result = result;
  inv.result2 = result2;
}

// ---- ABP (Figure 5, weakest proven orders) ---------------------------------

Insn abp_peek(const WInvocation& inv, const WAblation&) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: return load(Site::kAbpPushBotLoad, kLocBot);
        case 1:
          ABP_ASSERT_MSG(inv.b < kAbpCap, "ABP model overflow");
          return store(Site::kAbpPushItemStore, abp_cell(inv.b), inv.arg);
        case 2:
          return store(Site::kAbpPushBotStore, kLocBot,
                       static_cast<std::uint8_t>(inv.b + 1));
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0: return load(Site::kAbpTopAgeLoad, kLocAge);
        case 1: return load(Site::kAbpTopBotLoad, kLocBot);
        case 2: return load(Site::kAbpTopItemLoad, abp_cell(inv.t));
        case 3:
          return cas(Site::kAbpTopCas, kLocAge, pack_age(inv.g, inv.t),
                     pack_age(inv.g, static_cast<std::uint8_t>(inv.t + 1)));
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0: return load(Site::kAbpBotBotLoad, kLocBot);
        case 1: return store(Site::kAbpBotBotStore, kLocBot, inv.b);
        case 2: return load(Site::kAbpBotItemLoad, abp_cell(inv.b));
        case 3: return load(Site::kAbpBotAgeLoad, kLocAge);
        case 4: return store(Site::kAbpBotBotReset, kLocBot, 0);
        case 5:
          return cas(Site::kAbpBotCas, kLocAge, pack_age(inv.g, inv.t),
                     pack_age(inv.x == 0 ? inv.g  // x reused: new tag below
                                         : inv.x,
                              0));
        case 6:
          return store(Site::kAbpBotAgeStore, kLocAge,
                       pack_age(inv.x == 0 ? inv.g : inv.x, 0));
        default: break;
      }
      break;
    case Method::kPopTopBatch:  // growable machine only
    case Method::kTransfer:     // split machine only
    case Method::kIdle: break;
  }
  ABP_ASSERT_MSG(false, "abp_peek: invalid machine state");
  return Insn{};
}

void abp_advance(WInvocation& inv, const Insn& insn, std::uint8_t loaded,
                 bool cas_ok, const WAblation& abl) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: inv.b = loaded; inv.pc = 1; return;
        case 1: inv.pc = 2; return;
        case 2: retire(inv, kWNil); return;
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0:
          inv.t = top_of(loaded);
          inv.g = tag_of(loaded);
          inv.pc = 1;
          return;
        case 1:
          inv.b = loaded;
          if (inv.b <= inv.t) { retire(inv, kWNil); return; }
          inv.pc = 2;
          return;
        case 2: inv.x = loaded; inv.pc = 3; return;
        case 3: retire(inv, cas_ok ? inv.x : kWNil); return;
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0:
          inv.b = loaded;
          if (inv.b == 0) { retire(inv, kWNil); return; }
          --inv.b;
          inv.pc = 1;
          return;
        case 1: inv.pc = 2; return;
        case 2: inv.x = loaded; inv.pc = 3; return;
        case 3: {
          inv.t = top_of(loaded);
          inv.g = tag_of(loaded);
          if (inv.b > inv.t) { retire(inv, inv.x); return; }
          // Stash the item in `arg` (push-only register) and reuse `x`
          // for the new tag so pc 5/6 can emit it.
          inv.arg = inv.x;
          inv.x = abl.frozen_tag
                      ? inv.g
                      : static_cast<std::uint8_t>((inv.g + 1) & 0x0f);
          if (inv.x == 0 && !abl.frozen_tag) inv.x = inv.g;  // avoid 0 wrap
          inv.pc = 4;
          return;
        }
        case 4: inv.pc = inv.b == inv.t ? 5 : 6; return;
        case 5:
          if (cas_ok) { retire(inv, inv.arg); return; }
          inv.pc = 6;
          return;
        case 6: retire(inv, kWNil); return;
        default: break;
      }
      break;
    case Method::kPopTopBatch:  // growable machine only
    case Method::kTransfer:     // split machine only
    case Method::kIdle: break;
  }
  (void)insn;
  ABP_ASSERT_MSG(false, "abp_advance: invalid machine state");
}

// ---- growable ABP ----------------------------------------------------------

// `batch` arms the steal-half protocol (enable_batch_steals in
// abp_growable_deque.hpp): kPopTopBatch becomes available, and popBottom
// runs the defended-window tag bump before returning an item. The model
// capacity (kGrowCap1 = 6) is below kMaxStealBatch = 8, so — exactly as
// in a real deque shorter than the defended window — *every* armed
// popBottom defends.
Insn grow_peek(const WInvocation& inv, const WAblation& abl, bool batch) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: return load(Site::kGrowPushBotLoad, kLocBot);
        case 1: return load(Site::kGrowPushBufLoad, kLocBuf);
        case 2: return load(Site::kGrowGrowAgeLoad, kLocAge);
        case 3: return load(Site::kGrowGrowItemLoad, grow_cell(0, inv.i));
        case 4: return store(Site::kGrowGrowItemStore, grow_cell(1, inv.i),
                             inv.x);
        case 5: {
          Insn p = store(Site::kGrowGrowPublish, kLocBuf, 1);
          if (abl.grow_relaxed_publish) p.order = MemOrder::kRelaxed;
          return p;
        }
        case 6:
          ABP_ASSERT_MSG(inv.b < (inv.bf == 0 ? kGrowCap0 : kGrowCap1),
                         "growable model overflow");
          return store(Site::kGrowPushItemStore, grow_cell(inv.bf, inv.b),
                       inv.arg);
        case 7:
          return store(Site::kGrowPushBotStore, kLocBot,
                       static_cast<std::uint8_t>(inv.b + 1));
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0: return load(Site::kGrowTopAgeLoad, kLocAge);
        case 1: return load(Site::kGrowTopBotLoad, kLocBot);
        case 2: return load(Site::kGrowTopBufLoad, kLocBuf);
        case 3: return load(Site::kGrowTopItemLoad, grow_cell(inv.bf, inv.t));
        case 4:
          return cas(Site::kGrowTopCas, kLocAge, pack_age(inv.g, inv.t),
                     pack_age(inv.g, static_cast<std::uint8_t>(inv.t + 1)));
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0: return load(Site::kGrowBotBotLoad, kLocBot);
        case 1: return store(Site::kGrowBotBotStore, kLocBot, inv.b);
        case 2: return load(Site::kGrowBotBufLoad, kLocBuf);
        case 3: return load(Site::kGrowBotItemLoad, grow_cell(inv.bf, inv.b));
        case 4: return load(Site::kGrowBotAgeLoad, kLocAge);
        case 5: return store(Site::kGrowBotBotReset, kLocBot, 0);
        case 6:
          return cas(Site::kGrowBotCas, kLocAge, pack_age(inv.g, inv.t),
                     pack_age(inv.x, 0));
        case 7:
          return store(Site::kGrowBotAgeStore, kLocAge, pack_age(inv.x, 0));
        case 8:
          // Defended window: bump the tag (top unchanged) so any batch
          // CAS whose claim was read before this pop fails.
          return cas(Site::kGrowBotDefendCas, kLocAge,
                     pack_age(inv.g, inv.t),
                     pack_age(static_cast<std::uint8_t>((inv.g + 1) & 0x0f),
                              inv.t));
        default: break;
      }
      break;
    case Method::kPopTopBatch:
      ABP_ASSERT_MSG(batch, "kPopTopBatch needs batch_steals armed");
      switch (inv.pc) {
        case 0: return load(Site::kGrowBatchAgeLoad, kLocAge);
        case 1: return load(Site::kGrowBatchBotLoad, kLocBot);
        case 2: return load(Site::kGrowBatchBufLoad, kLocBuf);
        case 3: return load(Site::kGrowBatchItemLoad, grow_cell(inv.bf, inv.t));
        case 4:
          return load(Site::kGrowBatchItemLoad,
                      grow_cell(inv.bf, static_cast<std::uint8_t>(inv.t + 1)));
        case 5: {
          // One linearized claim of `i` items: top advances by the whole
          // batch. The ablation publishes top+1 regardless of the claim.
          const std::uint8_t advance =
              abl.batch_publish_short ? 1 : inv.i;
          return cas(Site::kGrowBatchCas, kLocAge, pack_age(inv.g, inv.t),
                     pack_age(inv.g,
                              static_cast<std::uint8_t>(inv.t + advance)));
        }
        default: break;
      }
      break;
    case Method::kTransfer:  // split machine only
    case Method::kIdle: break;
  }
  ABP_ASSERT_MSG(false, "grow_peek: invalid machine state");
  return Insn{};
}

void grow_advance(WInvocation& inv, const Insn& insn, std::uint8_t loaded,
                  bool cas_ok, const WAblation& abl, bool batch) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: inv.b = loaded; inv.pc = 1; return;
        case 1:
          inv.bf = loaded;
          if (inv.b == (inv.bf == 0 ? kGrowCap0 : kGrowCap1)) {
            ABP_ASSERT_MSG(inv.bf == 0, "growable model: second grow");
            inv.pc = 2;  // grow: read the copy window start
          } else {
            inv.pc = 6;
          }
          return;
        case 2:
          inv.i = top_of(loaded);  // copy [top, b) — stale-low copies more
          inv.pc = inv.i < inv.b ? 3 : 5;
          return;
        case 3: inv.x = loaded; inv.pc = 4; return;
        case 4:
          ++inv.i;
          inv.pc = inv.i < inv.b ? 3 : 5;
          return;
        case 5: inv.bf = 1; inv.pc = 6; return;
        case 6: inv.pc = 7; return;
        case 7: retire(inv, kWNil); return;
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0:
          inv.t = top_of(loaded);
          inv.g = tag_of(loaded);
          inv.pc = 1;
          return;
        case 1:
          inv.b = loaded;
          if (inv.b <= inv.t) { retire(inv, kWNil); return; }
          inv.pc = 2;
          return;
        case 2: inv.bf = loaded; inv.pc = 3; return;
        case 3: inv.x = loaded; inv.pc = 4; return;
        case 4: retire(inv, cas_ok ? inv.x : kWNil); return;
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0:
          inv.b = loaded;
          if (inv.b == 0) { retire(inv, kWNil); return; }
          --inv.b;
          inv.pc = 1;
          return;
        case 1: inv.pc = 2; return;
        case 2: inv.bf = loaded; inv.pc = 3; return;
        case 3: inv.x = loaded; inv.pc = 4; return;
        case 4:
          inv.t = top_of(loaded);
          inv.g = tag_of(loaded);
          if (inv.b > inv.t) {
            if (!batch || abl.batch_no_defense) { retire(inv, inv.x); return; }
            inv.pc = 8;  // defended window: tag-bump before returning
            return;
          }
          inv.arg = inv.x;
          inv.x = abl.frozen_tag
                      ? inv.g
                      : static_cast<std::uint8_t>((inv.g + 1) & 0x0f);
          if (inv.x == 0 && !abl.frozen_tag) inv.x = inv.g;
          inv.pc = 5;
          return;
        case 5: inv.pc = inv.b == inv.t ? 6 : 7; return;
        case 6:
          if (cas_ok) { retire(inv, inv.arg); return; }
          inv.pc = 7;
          return;
        case 7: retire(inv, kWNil); return;
        case 8:
          if (cas_ok) { retire(inv, inv.x); return; }
          // The CAS observed a newer age: re-check against it, exactly as
          // the retry loop in abp_growable_deque.hpp's pop_bottom.
          inv.t = top_of(loaded);
          inv.g = tag_of(loaded);
          if (inv.b > inv.t) return;  // retry the defend CAS (same pc)
          // A claim reached our item: fall into the reset/conflict path.
          inv.arg = inv.x;
          inv.x = abl.frozen_tag
                      ? inv.g
                      : static_cast<std::uint8_t>((inv.g + 1) & 0x0f);
          if (inv.x == 0 && !abl.frozen_tag) inv.x = inv.g;
          inv.pc = 5;
          return;
        default: break;
      }
      break;
    case Method::kPopTopBatch:
      switch (inv.pc) {
        case 0:
          inv.t = top_of(loaded);
          inv.g = tag_of(loaded);
          inv.pc = 1;
          return;
        case 1:
          inv.b = loaded;
          if (inv.b <= inv.t) { retire2(inv, kWNil, kWNil); return; }
          // Steal-half, rounded up, capped at the model batch limit.
          inv.i = static_cast<std::uint8_t>((inv.b - inv.t + 1) / 2);
          if (inv.i > kWBatchCap) inv.i = kWBatchCap;
          inv.pc = 2;
          return;
        case 2: inv.bf = loaded; inv.pc = 3; return;
        case 3:
          inv.x = loaded;
          inv.pc = inv.i == 2 ? 4 : 5;
          return;
        case 4: inv.x2 = loaded; inv.pc = 5; return;
        case 5:
          if (cas_ok) {
            retire2(inv, inv.x, inv.i == 2 ? inv.x2 : kWNil);
          } else {
            retire2(inv, kWNil, kWNil);
          }
          return;
        default: break;
      }
      break;
    case Method::kTransfer:  // split machine only
    case Method::kIdle: break;
  }
  (void)insn;
  (void)batch;
  ABP_ASSERT_MSG(false, "grow_advance: invalid machine state");
}

// ---- Chase-Lev -------------------------------------------------------------

Insn cl_peek(const WInvocation& inv, const WAblation& abl) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: return load(Site::kClPushBotLoad, kLocBot);
        case 1: return load(Site::kClPushTopLoad, kLocTop);
        case 2: return store(Site::kClPushItemStore, cl_cell(inv.b), inv.arg);
        case 3: {
          Insn p = store(Site::kClPushBotStore, kLocBot,
                         static_cast<std::uint8_t>(inv.b + 1));
          if (abl.cl_relaxed_bottom_store) p.order = MemOrder::kRelaxed;
          return p;
        }
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0: return load(Site::kClBotBotLoad, kLocBot);
        case 1: return store(Site::kClBotBotStore, kLocBot, inv.b);
        case 2: return fence(Site::kClBotFence);
        case 3: return load(Site::kClBotTopLoad, kLocTop);
        case 4: return store(Site::kClBotBotRestore, kLocBot,
                             static_cast<std::uint8_t>(inv.b + 1));
        case 5: return load(Site::kClBotItemLoad, cl_cell(inv.b));
        case 6:
          return cas(Site::kClBotCas, kLocTop, inv.t,
                     static_cast<std::uint8_t>(inv.t + 1));
        case 7: return store(Site::kClBotBotReset, kLocBot,
                             static_cast<std::uint8_t>(inv.b + 1));
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0: return load(Site::kClTopTopLoad, kLocTop);
        case 1: return fence(Site::kClTopFence);
        case 2: {
          Insn p = load(Site::kClTopBotLoad, kLocBot);
          if (abl.cl_no_steal_acquire) p.order = MemOrder::kRelaxed;
          return p;
        }
        case 3: return load(Site::kClTopItemLoad, cl_cell(inv.t));
        case 4: {
          Insn p = cas(Site::kClTopCas, kLocTop, inv.t,
                       static_cast<std::uint8_t>(inv.t + 1));
          if (abl.cl_relaxed_cas) p.order = MemOrder::kRelaxed;
          return p;
        }
        default: break;
      }
      break;
    case Method::kPopTopBatch:  // growable machine only
    case Method::kTransfer:     // split machine only
    case Method::kIdle: break;
  }
  ABP_ASSERT_MSG(false, "cl_peek: invalid machine state");
  return Insn{};
}

void cl_advance(WInvocation& inv, const Insn& insn, std::uint8_t loaded,
                bool cas_ok, const WAblation&) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: inv.b = loaded; inv.pc = 1; return;
        case 1:
          inv.t = loaded;
          ABP_ASSERT_MSG(inv.b - inv.t < kClCap, "Chase-Lev model overflow");
          inv.pc = 2;
          return;
        case 2: inv.pc = 3; return;
        case 3: retire(inv, kWNil); return;
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0:
          inv.b = loaded;
          ABP_ASSERT_MSG(inv.b > 0, "Chase-Lev counters must stay positive");
          --inv.b;
          inv.pc = 1;
          return;
        case 1: inv.pc = 2; return;
        case 2: inv.pc = 3; return;
        case 3:
          inv.t = loaded;
          if (inv.t > inv.b) { inv.pc = 4; return; }   // empty: restore
          inv.pc = 5;
          return;
        case 4: retire(inv, kWNil); return;
        case 5:
          inv.x = loaded;
          if (inv.t < inv.b) { retire(inv, inv.x); return; }  // plain path
          inv.pc = 6;  // t == b: race for the last element
          return;
        case 6: inv.ok = cas_ok ? 1 : 0; inv.pc = 7; return;
        case 7: retire(inv, inv.ok ? inv.x : kWNil); return;
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0: inv.t = loaded; inv.pc = 1; return;
        case 1: inv.pc = 2; return;
        case 2:
          inv.b = loaded;
          if (inv.t >= inv.b) { retire(inv, kWNil); return; }
          inv.pc = 3;
          return;
        case 3: inv.x = loaded; inv.pc = 4; return;
        case 4: retire(inv, cas_ok ? inv.x : kWNil); return;
        default: break;
      }
      break;
    case Method::kPopTopBatch:  // growable machine only
    case Method::kTransfer:     // split machine only
    case Method::kIdle: break;
  }
  (void)insn;
  ABP_ASSERT_MSG(false, "cl_advance: invalid machine state");
}

// ---- split public/private ---------------------------------------------------

// split_deque.hpp line by line. Registers: b = bottom, i = split mirror
// (owner) / batch take count (thief), x = the whole loaded ts word,
// arg = first stolen item (thief; push argument is consumed at pc 1),
// x2 = second batch item. The owner's inline hunger-triggered transfer
// is not taken here: scripts schedule kTransfer explicitly, which covers
// the identical interleavings because owner methods are serial on P0.
Insn split_peek(const WInvocation& inv, const WAblation& abl) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0: return load(Site::kSplitPushPbLoad, kLocBot);
        case 1:
          ABP_ASSERT_MSG(inv.b < kSplitCap, "split model overflow");
          return store(Site::kSplitPushItemStore, split_cell(inv.b), inv.arg);
        case 2:
          return store(Site::kSplitPushPbStore, kLocBot,
                       pack_spb(static_cast<std::uint8_t>(inv.b + 1), inv.i));
        case 3: return load(Site::kSplitPushHungerLoad, kLocTop);
        default: break;
      }
      break;
    case Method::kTransfer:
      switch (inv.pc) {
        case 0: return load(Site::kSplitTransferPbLoad, kLocBot);
        case 1: return store(Site::kSplitTransferHungerClear, kLocTop, 0);
        case 2: return load(Site::kSplitTransferTsLoad, kLocAge);
        case 3: {
          const std::uint8_t tag =
              abl.split_frozen_tag
                  ? ts_tag(inv.x)
                  : static_cast<std::uint8_t>((ts_tag(inv.x) + 1) & 0x0f);
          const std::uint8_t desired = pack_ts(tag, ts_top(inv.x), inv.b);
          if (abl.split_blind_publish)
            return store(Site::kSplitTransferPublishCas, kLocAge, desired);
          Insn p =
              cas(Site::kSplitTransferPublishCas, kLocAge, inv.x, desired);
          if (abl.split_relaxed_transfer) p.order = MemOrder::kRelaxed;
          return p;
        }
        case 4:
          return store(Site::kSplitTransferPbStore, kLocBot,
                       pack_spb(inv.b, inv.b));
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0: return load(Site::kSplitBotPbLoad, kLocBot);
        case 1:
          return store(Site::kSplitBotPbStore, kLocBot,
                       pack_spb(static_cast<std::uint8_t>(inv.b - 1), inv.i));
        case 2:
          return load(Site::kSplitBotItemLoad,
                      split_cell(static_cast<std::uint8_t>(inv.b - 1)));
        case 3: return load(Site::kSplitReclaimTsLoad, kLocAge);
        case 4: {
          const std::uint8_t t = ts_top(inv.x);
          const std::uint8_t pub =
              static_cast<std::uint8_t>(ts_split(inv.x) - t);
          const std::uint8_t ns = static_cast<std::uint8_t>(t + pub / 2);
          const std::uint8_t tag =
              abl.split_frozen_tag
                  ? ts_tag(inv.x)
                  : static_cast<std::uint8_t>((ts_tag(inv.x) + 1) & 0x0f);
          return cas(Site::kSplitReclaimShrinkCas, kLocAge, inv.x,
                     pack_ts(tag, t, ns));
        }
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0: {
          Insn p = load(Site::kSplitTopTsLoad, kLocAge);
          if (abl.split_no_steal_acquire) p.order = MemOrder::kRelaxed;
          return p;
        }
        case 1: return store(Site::kSplitTopHungerStore, kLocTop, 1);
        case 2:
          return load(Site::kSplitTopItemLoad, split_cell(ts_top(inv.x)));
        case 3:
          return cas(Site::kSplitTopClaimCas, kLocAge, inv.x,
                     pack_ts(ts_tag(inv.x),
                             static_cast<std::uint8_t>(ts_top(inv.x) + 1),
                             ts_split(inv.x)));
        default: break;
      }
      break;
    case Method::kPopTopBatch:
      switch (inv.pc) {
        case 0: {
          Insn p = load(Site::kSplitBatchTsLoad, kLocAge);
          if (abl.split_no_steal_acquire) p.order = MemOrder::kRelaxed;
          return p;
        }
        case 1: return store(Site::kSplitBatchHungerStore, kLocTop, 1);
        case 2:
          return load(Site::kSplitBatchItemLoad, split_cell(ts_top(inv.x)));
        case 3:
          return load(Site::kSplitBatchItemLoad,
                      split_cell(static_cast<std::uint8_t>(ts_top(inv.x) + 1)));
        case 4:
          return cas(
              Site::kSplitBatchClaimCas, kLocAge, inv.x,
              pack_ts(ts_tag(inv.x),
                      static_cast<std::uint8_t>(ts_top(inv.x) + inv.i),
                      ts_split(inv.x)));
        default: break;
      }
      break;
    case Method::kIdle: break;
  }
  ABP_ASSERT_MSG(false, "split_peek: invalid machine state");
  return Insn{};
}

void split_advance(WInvocation& inv, const Insn& insn, std::uint8_t loaded,
                   bool cas_ok, const WAblation& abl) {
  switch (inv.method) {
    case Method::kPushBottom:
      switch (inv.pc) {
        case 0:
          inv.b = spb_b(loaded);
          inv.i = spb_s(loaded);
          inv.pc = 1;
          return;
        case 1: inv.pc = 2; return;
        case 2: inv.pc = 3; return;
        case 3: retire(inv, kWNil); return;  // hunger observed; see above
        default: break;
      }
      break;
    case Method::kTransfer:
      switch (inv.pc) {
        case 0:
          inv.b = spb_b(loaded);
          inv.i = spb_s(loaded);
          if (inv.b == inv.i) { retire(inv, kWNil); return; }  // size 0
          inv.pc = 1;
          return;
        case 1: inv.pc = 2; return;
        case 2: inv.x = loaded; inv.pc = 3; return;
        case 3:
          if (abl.split_blind_publish || cas_ok) { inv.pc = 4; return; }
          inv.x = loaded;  // CAS observed a claim; retry against it
          return;
        case 4: retire(inv, kWNil); return;
        default: break;
      }
      break;
    case Method::kPopBottom:
      switch (inv.pc) {
        case 0:
          inv.b = spb_b(loaded);
          inv.i = spb_s(loaded);
          inv.pc = inv.b != inv.i ? 1 : 3;  // private empty -> reclaim
          return;
        case 1: inv.pc = 2; return;
        case 2: retire(inv, loaded); return;
        case 3:
          inv.x = loaded;
          if (ts_split(inv.x) == ts_top(inv.x)) { retire(inv, kWNil); return; }
          inv.pc = 4;
          return;
        case 4:
          if (cas_ok) {
            const std::uint8_t t = ts_top(inv.x);
            inv.i = static_cast<std::uint8_t>(
                t + static_cast<std::uint8_t>(ts_split(inv.x) - t) / 2);
            inv.pc = 1;  // fast path against the reclaimed segment
            return;
          }
          inv.pc = 3;  // lost to a claim: re-read the word
          return;
        default: break;
      }
      break;
    case Method::kPopTop:
      switch (inv.pc) {
        case 0:
          inv.x = loaded;
          inv.pc = ts_split(inv.x) == ts_top(inv.x) ? 1 : 2;
          return;
        case 1: retire(inv, kWNil); return;
        case 2: inv.arg = loaded; inv.pc = 3; return;
        case 3: retire(inv, cas_ok ? inv.arg : kWNil); return;
        default: break;
      }
      break;
    case Method::kPopTopBatch:
      switch (inv.pc) {
        case 0: {
          inv.x = loaded;
          const std::uint8_t pub =
              static_cast<std::uint8_t>(ts_split(inv.x) - ts_top(inv.x));
          if (pub == 0) { inv.pc = 1; return; }
          inv.i = static_cast<std::uint8_t>((pub + 1) / 2);
          if (inv.i > kWBatchCap) inv.i = kWBatchCap;
          inv.pc = 2;
          return;
        }
        case 1: retire2(inv, kWNil, kWNil); return;
        case 2:
          inv.arg = loaded;
          inv.pc = inv.i == 2 ? 3 : 4;
          return;
        case 3: inv.x2 = loaded; inv.pc = 4; return;
        case 4:
          if (cas_ok) {
            retire2(inv, inv.arg, inv.i == 2 ? inv.x2 : kWNil);
          } else {
            retire2(inv, kWNil, kWNil);
          }
          return;
        default: break;
      }
      break;
    case Method::kIdle: break;
  }
  (void)insn;
  ABP_ASSERT_MSG(false, "split_advance: invalid machine state");
}

}  // namespace

const char* to_string(WMachine m) noexcept {
  switch (m) {
    case WMachine::kAbp: return "abp";
    case WMachine::kChaseLev: return "chase_lev";
    case WMachine::kGrowable: return "growable";
    case WMachine::kSplit: return "split";
  }
  return "?";
}

const OrderSpec& order_spec(Site site) noexcept {
  return kOrderTable[static_cast<std::size_t>(site)];
}

std::vector<std::pair<Loc, std::uint8_t>> wm_initial(WMachine m) {
  std::vector<std::pair<Loc, std::uint8_t>> init;
  switch (m) {
    case WMachine::kAbp:
      for (int i = 0; i < kAbpCap; ++i)
        init.emplace_back(abp_cell(static_cast<std::uint8_t>(i)), kWPoison);
      break;
    case WMachine::kChaseLev:
      // top/bottom start at kClBase so popBottom's decrement never wraps.
      init.emplace_back(kLocTop, kClBase);
      init.emplace_back(kLocBot, kClBase);
      for (int i = 0; i < kClCap; ++i)
        init.emplace_back(static_cast<Loc>(kLocCell + i), kWPoison);
      break;
    case WMachine::kGrowable:
      for (int i = 0; i < kGrowCap0; ++i)
        init.emplace_back(grow_cell(0, static_cast<std::uint8_t>(i)),
                          kWPoison);
      for (int i = 0; i < kGrowCap1; ++i)
        init.emplace_back(grow_cell(1, static_cast<std::uint8_t>(i)),
                          kWPoison);
      break;
    case WMachine::kSplit:
      // ts, pb and hunger all start 0 (the WeakMemory default).
      for (int i = 0; i < kSplitCap; ++i)
        init.emplace_back(split_cell(static_cast<std::uint8_t>(i)), kWPoison);
      break;
  }
  return init;
}

Insn wm_peek(WMachine m, const WInvocation& inv, const WAblation& abl,
             bool batch_steals) {
  switch (m) {
    case WMachine::kAbp: return abp_peek(inv, abl);
    case WMachine::kChaseLev: return cl_peek(inv, abl);
    case WMachine::kGrowable: return grow_peek(inv, abl, batch_steals);
    case WMachine::kSplit: return split_peek(inv, abl);
  }
  ABP_ASSERT(false);
  return Insn{};
}

void wm_advance(WMachine m, WInvocation& inv, const Insn& insn,
                std::uint8_t loaded, bool cas_ok, const WAblation& abl,
                bool batch_steals) {
  switch (m) {
    case WMachine::kAbp: abp_advance(inv, insn, loaded, cas_ok, abl); return;
    case WMachine::kChaseLev: cl_advance(inv, insn, loaded, cas_ok, abl);
      return;
    case WMachine::kGrowable:
      grow_advance(inv, insn, loaded, cas_ok, abl, batch_steals);
      return;
    case WMachine::kSplit:
      split_advance(inv, insn, loaded, cas_ok, abl);
      return;
  }
  ABP_ASSERT(false);
}

Footprint wm_footprint(WMachine m, Method method) {
  Footprint f;
  auto r = [&f](Loc l) { f.reads |= 1u << l; };
  auto w = [&f](Loc l) { f.writes |= 1u << l; };
  if (m == WMachine::kSplit) {
    // No split method carries a seq_cst access: f.sc stays false.
    std::uint32_t scells = 0;
    for (int i = 0; i < kSplitCap; ++i) scells |= 1u << (kLocCell + i);
    switch (method) {
      case Method::kPushBottom:
        r(kLocBot);
        w(kLocBot);
        f.writes |= scells;
        r(kLocTop);  // hunger poll
        break;
      case Method::kTransfer:
        r(kLocBot);
        w(kLocBot);
        w(kLocTop);  // hunger clear
        r(kLocAge);
        w(kLocAge);
        break;
      case Method::kPopBottom:
        r(kLocBot);
        w(kLocBot);
        f.reads |= scells;
        r(kLocAge);  // reclaim
        w(kLocAge);
        break;
      case Method::kPopTop:
      case Method::kPopTopBatch:
        r(kLocAge);
        w(kLocAge);
        f.reads |= scells;
        w(kLocTop);  // hunger signal
        break;
      case Method::kIdle: break;
    }
    return f;
  }
  std::uint32_t cells = 0;
  const int ncells = m == WMachine::kChaseLev ? kClCap
                     : m == WMachine::kAbp    ? kAbpCap
                                              : kGrowCap0 + kGrowCap1 + 4;
  for (int i = 0; i < ncells && kLocCell + i < kMaxLocs; ++i)
    cells |= 1u << (kLocCell + i);
  const bool cl = m == WMachine::kChaseLev;
  const Loc idx = cl ? kLocTop : kLocAge;  // the CAS word
  switch (method) {
    case Method::kPushBottom:
      r(kLocBot);
      if (cl) r(kLocTop);
      if (m == WMachine::kGrowable) {
        r(kLocBuf);
        w(kLocBuf);
        r(kLocAge);
        f.reads |= cells;
      }
      w(kLocBot);
      f.writes |= cells;
      break;
    case Method::kPopTop:
    case Method::kPopTopBatch:  // same footprint shape as a single steal
      r(idx);
      r(kLocBot);
      if (m == WMachine::kGrowable) r(kLocBuf);
      f.reads |= cells;
      w(idx);
      f.sc = true;  // the CAS (and Chase-Lev's fence)
      break;
    case Method::kPopBottom:
      r(kLocBot);
      w(kLocBot);
      if (m == WMachine::kGrowable) r(kLocBuf);
      f.reads |= cells;
      r(idx);
      w(idx);
      f.sc = true;  // seq_cst bottom store / fence / CAS
      break;
    case Method::kTransfer:  // split machine only; handled above
    case Method::kIdle: break;
  }
  return f;
}

std::uint64_t wm_remaining(WMachine m, const WeakMemory& mem) {
  std::uint64_t remaining = 0;
  auto add = [&remaining](std::uint8_t v) {
    if (v < 64) remaining |= 1ull << v;
    else remaining |= 1ull << 63;  // poison/unwritten counts as "a value"
  };
  switch (m) {
    case WMachine::kAbp: {
      const std::uint8_t age = mem.latest(kLocAge);
      for (std::uint8_t i = top_of(age); i < mem.latest(kLocBot); ++i)
        add(mem.latest(abp_cell(i)));
      break;
    }
    case WMachine::kGrowable: {
      const std::uint8_t age = mem.latest(kLocAge);
      const std::uint8_t bf = mem.latest(kLocBuf);
      for (std::uint8_t i = top_of(age); i < mem.latest(kLocBot); ++i)
        add(mem.latest(grow_cell(bf, i)));
      break;
    }
    case WMachine::kChaseLev: {
      const std::uint8_t t = mem.latest(kLocTop);
      const std::uint8_t b = mem.latest(kLocBot);
      for (std::uint8_t i = t; i < b; ++i) add(mem.latest(cl_cell(i)));
      break;
    }
    case WMachine::kSplit: {
      // Held items span [top, bottom): the public [top, split) plus the
      // private [split, bottom) segments.
      const std::uint8_t t = ts_top(mem.latest(kLocAge));
      const std::uint8_t b = spb_b(mem.latest(kLocBot));
      for (std::uint8_t i = t; i < b; ++i) add(mem.latest(split_cell(i)));
      break;
    }
  }
  return remaining;
}

}  // namespace abp::model
