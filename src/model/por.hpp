#pragma once

// Dynamic partial-order reduction primitives for the weak-memory
// explorer (weak_explorer.cpp).
//
// Two classic reductions, composed:
//
//   * Sleep sets (Godefroid). After exploring transition t from state s,
//     t is added to the sleep set for s's remaining branches; a child
//     state inherits the sleeping transitions that are independent of
//     the executed one. A sleeping transition's trace was already
//     covered through a sibling, so re-exploring it is redundant.
//     Sound for the properties checked here because a violation is a
//     function of the execution's Mazurkiewicz trace (return values are
//     unchanged by commuting independent transitions), and sleep sets
//     keep at least one interleaving per trace.
//
//   * Singleton persistent sets ("persistent-set-lite"). If every
//     transition some process p can ever execute from s is independent
//     of every transition every other process can ever execute (checked
//     conservatively against whole-method footprints, wm_footprint),
//     then exploring only p's transitions from s is sufficient. This is
//     cheap and fires mostly in quiescent tails, where it collapses the
//     remaining schedule to one path; the sleep sets do the heavy
//     lifting mid-flight.
//
// Transition identity is (proc, is_flush): at a fixed state, a process
// has at most one pending instruction and at most one flushable store,
// so the pair names the transition unambiguously.

#include <cstdint>
#include <vector>

#include "model/weak.hpp"
#include "model/weak_machine.hpp"

namespace abp::model {

// What one transition touches, recorded when it was enabled.
struct TransAccess {
  std::uint8_t proc = 0;
  bool is_flush = false;  // TSO store-buffer flush, not an instruction
  bool has_loc = true;    // fences touch no location
  Loc loc = 0;
  bool write = false;
  bool sc = false;  // participates in the global SC order
};

// Conservative dependency relation: same process (program order), both
// seq_cst (they order against the global SC view / drain buffers), or a
// read/write conflict on one location.
inline bool dependent(const TransAccess& a, const TransAccess& b) noexcept {
  if (a.proc == b.proc) {
    // An instruction commutes with the same process's own store-buffer
    // flush under TSO: loads forward from the newest buffered store
    // (same value either way), stores append while flushes pop, and
    // drain-gated instructions are never co-enabled with a pending
    // flush. Everything else a process does is program-ordered.
    return a.is_flush == b.is_flush;
  }
  if (a.sc && b.sc) return true;
  return a.has_loc && b.has_loc && a.loc == b.loc && (a.write || b.write);
}

// Does a single access conflict with a whole-process future footprint?
inline bool conflicts(const TransAccess& a, const Footprint& f) noexcept {
  if (a.sc && f.sc) return true;
  if (!a.has_loc) return false;
  const std::uint32_t bit = 1u << a.loc;
  if (a.write) return ((f.reads | f.writes) & bit) != 0;
  return (f.writes & bit) != 0;
}

class SleepSet {
 public:
  bool contains(std::uint8_t proc, bool is_flush) const noexcept {
    for (const TransAccess& t : entries_)
      if (t.proc == proc && t.is_flush == is_flush) return true;
    return false;
  }

  // The sleep set a child inherits after executing `t`: the entries
  // independent of t (a dependent sleeper must be re-explored, since
  // executing t may have changed what it does).
  SleepSet after(const TransAccess& t) const {
    SleepSet child;
    child.entries_.reserve(entries_.size());
    for (const TransAccess& u : entries_)
      if (!dependent(u, t)) child.entries_.push_back(u);
    return child;
  }

  void insert(const TransAccess& t) { entries_.push_back(t); }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<TransAccess> entries_;
};

}  // namespace abp::model
